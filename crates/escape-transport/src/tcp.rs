//! TCP transport: a full mesh of length-prefixed framed connections using
//! the `escape-wire` codec.
//!
//! Each node runs an acceptor on a caller-supplied listener; inbound
//! connections get a reader thread that parses frames into [`Envelope`]s
//! and forwards them to the node loop. Outbound connections are opened
//! lazily per peer and dropped on error (the next send reconnects) —
//! message loss during reconnection is just network loss to the protocol.
//!
//! Listeners are **bound by the caller and passed in** (see
//! [`loopback_listeners`]): binding inside `spawn` from a probed address
//! was a TOCTOU race (another process could take the port between probe
//! and bind), and holding the listener outside the node is also what lets
//! a killed node be restarted on the same address without rebinding — the
//! kill-and-restart durability test depends on it.
//!
//! With a `data_dir`, the node persists term/vote/log/configuration
//! through `escape-storage` and recovers them on the next spawn from the
//! same directory; the engine syncs the WAL before any message it
//! produced is handed to this transport, so a vote a peer has seen is
//! always on disk.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use bytes::BytesMut;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;

use escape_core::engine::Node;
use escape_core::message::Message;
use escape_core::statemachine::StateMachine;
use escape_core::types::ServerId;
use escape_storage::WalStorage;
use escape_wire::{write_frame, Decode, Encode, Envelope, FrameReader};

use crate::clock::RuntimeClock;
use crate::runtime::{node_loop, NodeInput, Outbound};
use crate::spec::ProtocolSpec;

/// Lazily connected, mutex-guarded outbound links.
struct TcpOutbound {
    from: ServerId,
    addrs: HashMap<ServerId, SocketAddr>,
    links: Mutex<HashMap<ServerId, TcpStream>>,
}

impl TcpOutbound {
    fn connection(&self, to: ServerId) -> Option<TcpStream> {
        let mut links = self.links.lock();
        if let Some(stream) = links.get(&to) {
            if let Ok(clone) = stream.try_clone() {
                return Some(clone);
            }
            links.remove(&to);
        }
        let addr = self.addrs.get(&to)?;
        let stream = TcpStream::connect_timeout(addr, std::time::Duration::from_millis(250)).ok()?;
        stream.set_nodelay(true).ok();
        let clone = stream.try_clone().ok()?;
        links.insert(to, stream);
        Some(clone)
    }
}

impl Outbound for TcpOutbound {
    fn send(&self, to: ServerId, msg: Message) {
        let Some(mut stream) = self.connection(to) else {
            return; // unreachable peer == lost message
        };
        let envelope = Envelope {
            from: self.from,
            message: msg,
        };
        let mut frame = BytesMut::new();
        write_frame(&mut frame, &envelope.to_bytes());
        if stream.write_all(&frame).is_err() {
            // Drop the broken link; the next send reconnects.
            self.links.lock().remove(&to);
        }
    }
}

/// One TCP consensus node: its acceptor, reader threads, and node loop.
#[derive(Debug)]
pub struct TcpNode {
    id: ServerId,
    my_addr: SocketAddr,
    inbox: Sender<NodeInput>,
    stop_accepting: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl TcpNode {
    /// Boots server `id` of a cluster whose listen addresses are `addrs`
    /// (every node must appear, including `id` itself), accepting on the
    /// caller-bound `listener`.
    ///
    /// With `data_dir`, persistent state (term, vote, log, configuration,
    /// snapshots) is recovered from and written to that directory via
    /// `escape-storage`; `None` runs memory-only (tests, demos).
    ///
    /// # Panics
    ///
    /// Panics if `addrs` lacks `id` or the data directory cannot be
    /// opened/recovered (a node that cannot persist must not serve).
    pub fn spawn(
        id: ServerId,
        listener: TcpListener,
        addrs: HashMap<ServerId, SocketAddr>,
        spec: ProtocolSpec,
        seed: u64,
        state_machine: Box<dyn StateMachine>,
        data_dir: Option<&Path>,
    ) -> Self {
        let my_addr = *addrs.get(&id).expect("own address present");
        let ids: Vec<ServerId> = {
            let mut v: Vec<ServerId> = addrs.keys().copied().collect();
            v.sort_unstable();
            v
        };
        let n = ids.len();

        let (tx, rx) = unbounded::<NodeInput>();
        let stop_accepting = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();

        // Acceptor: one reader thread per inbound connection. It checks
        // the stop flag after every accept; `stop_acceptor` wakes it with
        // a throwaway connection so shutdown does not block on `incoming`.
        {
            let tx = tx.clone();
            let stop = stop_accepting.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("escape-tcp-accept-{}", id.get()))
                    .spawn(move || {
                        for stream in listener.incoming() {
                            if stop.load(Ordering::Acquire) {
                                break;
                            }
                            let Ok(stream) = stream else { break };
                            stream.set_nodelay(true).ok();
                            let tx = tx.clone();
                            // Reader threads exit when the peer disconnects
                            // or the inbox closes.
                            std::thread::spawn(move || read_loop(stream, tx));
                        }
                    })
                    .expect("spawn acceptor"),
            );
        }

        let mut builder = Node::builder(id, ids)
            .policy(spec.build_policy(id, n, seed.wrapping_add(id.get() as u64)))
            .state_machine(state_machine)
            .options(ProtocolSpec::local_options());
        if let Some(dir) = data_dir {
            let (storage, recovered) =
                WalStorage::open(dir).expect("open/recover node data directory");
            builder = builder.storage(Box::new(storage)).recover(recovered);
        }
        let node = builder.build();
        let outbound: Arc<dyn Outbound + Sync> = Arc::new(TcpOutbound {
            from: id,
            addrs,
            links: Mutex::new(HashMap::new()),
        });
        let clock = RuntimeClock::start();
        threads.push(
            std::thread::Builder::new()
                .name(format!("escape-tcp-node-{}", id.get()))
                .spawn(move || node_loop(node, rx, outbound, clock))
                .expect("spawn node loop"),
        );

        TcpNode {
            id,
            my_addr,
            inbox: tx,
            stop_accepting,
            threads,
        }
    }

    /// This node's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// The node's input channel (peer messages, proposals, queries).
    pub fn inbox(&self) -> Sender<NodeInput> {
        self.inbox.clone()
    }

    fn stop_acceptor(&self) {
        self.stop_accepting.store(true, Ordering::Release);
        // Wake the blocking accept; the flag makes it exit.
        let _ = TcpStream::connect_timeout(&self.my_addr, std::time::Duration::from_millis(250));
    }

    /// Stops the node and joins its threads.
    ///
    /// There is deliberately no flush-on-exit here: all durability
    /// happened record-by-record before each message was sent, so a
    /// "graceful" shutdown and a SIGKILL leave identical data directories
    /// — which is what [`TcpNode::kill`] (and the kill-and-restart test)
    /// rely on.
    pub fn shutdown(self) {
        let _ = self.inbox.send(NodeInput::Shutdown);
        self.stop_acceptor();
        for handle in self.threads {
            let _ = handle.join();
        }
    }

    /// Crash the node: stop its threads with no goodbye to peers and no
    /// final flush — durability-wise identical to a SIGKILL, because
    /// every persistent mutation was already fsync'd before the message
    /// it produced left the node. Spawn a new node on the same listener
    /// (clone) and data directory to model a process restart.
    pub fn kill(self) {
        self.shutdown();
    }
}

fn read_loop(mut stream: TcpStream, tx: Sender<NodeInput>) {
    let mut reader = FrameReader::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return,
            Ok(n) => n,
        };
        reader.extend(&chunk[..n]);
        loop {
            match reader.next_frame() {
                Ok(Some(mut frame)) => match Envelope::decode(&mut frame) {
                    Ok(envelope) => {
                        if tx
                            .send(NodeInput::Peer(envelope.from, envelope.message))
                            .is_err()
                        {
                            return;
                        }
                    }
                    Err(_) => return, // corrupt stream: drop the connection
                },
                Ok(None) => break,
                Err(_) => return,
            }
        }
    }
}

/// Binds `n` loopback listeners on OS-assigned free ports and returns
/// them **held open** alongside the address map.
///
/// The previous probe-then-rebind approach (bind, read the port, drop the
/// listener, bind again later inside the node) was a TOCTOU race: any
/// other process could take the port in the gap, flaking the TCP tests in
/// CI. Holding the bound listener and handing the node a
/// [`TcpListener::try_clone`] closes the race — and keeps the port
/// reserved across a node kill/restart cycle.
pub fn loopback_listeners(
    n: usize,
) -> (HashMap<ServerId, SocketAddr>, HashMap<ServerId, TcpListener>) {
    let mut addrs = HashMap::new();
    let mut listeners = HashMap::new();
    for i in 1..=n as u32 {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback listener");
        let addr = listener.local_addr().expect("local addr");
        addrs.insert(ServerId::new(i), addr);
        listeners.insert(ServerId::new(i), listener);
    }
    (addrs, listeners)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::NodeStatus;
    use bytes::Bytes;
    use crossbeam::channel::bounded;
    use escape_core::types::{Role, Term};
    use std::path::PathBuf;
    use std::sync::atomic::AtomicU64;
    use std::time::{Duration, Instant};

    fn scratch_dir(label: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "escape-tcp-test-{}-{label}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn spawn_node(
        id: u32,
        addrs: &HashMap<ServerId, SocketAddr>,
        listeners: &HashMap<ServerId, TcpListener>,
        data_dir: Option<&Path>,
    ) -> TcpNode {
        let id = ServerId::new(id);
        TcpNode::spawn(
            id,
            listeners[&id].try_clone().expect("clone listener"),
            addrs.clone(),
            ProtocolSpec::escape_local(),
            99,
            Box::new(escape_core::statemachine::NullStateMachine),
            data_dir,
        )
    }

    fn status_of(node: &TcpNode) -> Option<NodeStatus> {
        let (tx, rx) = bounded(1);
        node.inbox().send(NodeInput::Query { reply: tx }).ok()?;
        rx.recv_timeout(Duration::from_secs(1)).ok()
    }

    fn wait_for_leader(nodes: &[TcpNode], timeout: Duration) -> usize {
        let deadline = Instant::now() + timeout;
        loop {
            assert!(Instant::now() < deadline, "no TCP leader within {timeout:?}");
            if let Some(i) = nodes
                .iter()
                .position(|n| status_of(n).is_some_and(|s| s.role == Role::Leader))
            {
                return i;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    fn propose_and_apply(node: &TcpNode, command: &'static [u8]) -> escape_core::types::LogIndex {
        let (tx, rx) = bounded(1);
        node.inbox()
            .send(NodeInput::Propose {
                command: Bytes::from_static(command),
                reply: tx,
            })
            .unwrap();
        let index = rx
            .recv_timeout(Duration::from_secs(2))
            .expect("reply")
            .expect("accepted");
        let (atx, arx) = bounded(1);
        node.inbox()
            .send(NodeInput::AwaitApplied { index, reply: atx })
            .unwrap();
        arx.recv_timeout(Duration::from_secs(5)).expect("applied over TCP");
        index
    }

    #[test]
    fn tcp_cluster_elects_and_commits() {
        let (addrs, listeners) = loopback_listeners(3);
        let nodes: Vec<TcpNode> = (1..=3u32)
            .map(|i| spawn_node(i, &addrs, &listeners, None))
            .collect();

        let leader_index = wait_for_leader(&nodes, Duration::from_secs(10));
        propose_and_apply(&nodes[leader_index], b"over-tcp");

        for node in nodes {
            node.shutdown();
        }
    }

    /// The tentpole's acceptance test, phase 1: a node killed
    /// mid-leadership recovers term/vote/log from its data directory,
    /// rejoins, and the cluster recommits a new command through it.
    #[test]
    fn tcp_killed_leader_recovers_from_data_dir_and_cluster_recommits() {
        let (addrs, listeners) = loopback_listeners(3);
        let dirs: Vec<PathBuf> = (1..=3).map(|i| scratch_dir(&format!("kill-{i}"))).collect();
        let mut nodes: Vec<Option<TcpNode>> = (1..=3u32)
            .map(|i| Some(spawn_node(i, &addrs, &listeners, Some(&dirs[(i - 1) as usize]))))
            .collect();
        let all = |nodes: &Vec<Option<TcpNode>>| -> Vec<NodeStatus> {
            nodes
                .iter()
                .map(|n| status_of(n.as_ref().unwrap()).expect("status"))
                .collect()
        };

        let leader = {
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                assert!(Instant::now() < deadline, "no leader within 10s");
                if let Some(i) = all(&nodes).iter().position(|s| s.role == Role::Leader) {
                    break i;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        };
        propose_and_apply(nodes[leader].as_ref().unwrap(), b"pre-crash");
        let pre = status_of(nodes[leader].as_ref().unwrap()).expect("status");
        assert!(pre.term > Term::ZERO);
        assert!(pre.log_len >= 2, "no-op + command");

        // SIGKILL-equivalent: no flush beyond the per-event fsyncs that
        // already happened before each sent message.
        nodes[leader].take().unwrap().kill();

        // Restart from the same data directory on the same (still-bound)
        // listener, and check the recovered persistent state.
        let restarted_id = (leader + 1) as u32;
        nodes[leader] = Some(spawn_node(
            restarted_id,
            &addrs,
            &listeners,
            Some(&dirs[leader]),
        ));
        let recovered = status_of(nodes[leader].as_ref().unwrap()).expect("status");
        assert!(
            recovered.term >= pre.term,
            "recovered term {} must not regress below pre-crash {}",
            recovered.term,
            pre.term
        );
        assert!(
            recovered.log_len >= pre.log_len,
            "recovered log ({} entries) lost entries vs pre-crash ({})",
            recovered.log_len,
            pre.log_len
        );

        // The cluster (restarted node included) elects and recommits.
        let deadline = Instant::now() + Duration::from_secs(15);
        let new_leader = loop {
            assert!(Instant::now() < deadline, "no post-restart leader");
            if let Some(i) = all(&nodes).iter().position(|s| s.role == Role::Leader) {
                break i;
            }
            std::thread::sleep(Duration::from_millis(25));
        };
        let index = propose_and_apply(nodes[new_leader].as_ref().unwrap(), b"post-crash");

        // The restarted node must apply the new command too (proof it
        // rejoined replication, not just that a quorum exists without it).
        let (atx, arx) = bounded(1);
        nodes[leader]
            .as_ref()
            .unwrap()
            .inbox()
            .send(NodeInput::AwaitApplied { index, reply: atx })
            .unwrap();
        arx.recv_timeout(Duration::from_secs(10))
            .expect("restarted node applied the post-crash command");

        for node in nodes.into_iter().flatten() {
            node.shutdown();
        }
    }

    /// Phase 2: a node restarted with a **wiped** data directory is back
    /// on the boot configuration (confClock 0, empty log) and must not
    /// win the ensuing election — the intact follower's durable clock
    /// (plus log up-to-dateness) fences it, per §IV-B / Fig. 5b.
    #[test]
    fn tcp_wiped_node_is_fenced_not_elected() {
        let (addrs, listeners) = loopback_listeners(3);
        let dirs: Vec<PathBuf> = (1..=3).map(|i| scratch_dir(&format!("wipe-{i}"))).collect();
        let mut nodes: Vec<Option<TcpNode>> = (1..=3u32)
            .map(|i| Some(spawn_node(i, &addrs, &listeners, Some(&dirs[(i - 1) as usize]))))
            .collect();

        let leader = {
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                assert!(Instant::now() < deadline, "no leader within 10s");
                let statuses: Vec<NodeStatus> = nodes
                    .iter()
                    .map(|n| status_of(n.as_ref().unwrap()).expect("status"))
                    .collect();
                if let Some(i) = statuses.iter().position(|s| s.role == Role::Leader) {
                    break i;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        };
        propose_and_apply(nodes[leader].as_ref().unwrap(), b"seed-entry");
        // Let a few heartbeat rounds run so the PPF assignment (clock ≥ 1)
        // reaches the followers and lands in their WALs.
        std::thread::sleep(Duration::from_millis(500));

        // Kill the leader for good, and wipe + restart one follower.
        let wiped = (0..3).find(|i| *i != leader).unwrap();
        let intact = (0..3).find(|i| *i != leader && *i != wiped).unwrap();
        nodes[leader].take().unwrap().kill();
        nodes[wiped].take().unwrap().kill();
        std::fs::remove_dir_all(&dirs[wiped]).unwrap();
        nodes[wiped] = Some(spawn_node(
            (wiped + 1) as u32,
            &addrs,
            &listeners,
            Some(&dirs[wiped]),
        ));

        // The two live nodes (wiped + intact) are a quorum; only the
        // intact one may win. Poll the whole window: the wiped node must
        // never report leadership.
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut intact_led = false;
        while Instant::now() < deadline {
            let wiped_status = status_of(nodes[wiped].as_ref().unwrap()).expect("status");
            assert_ne!(
                wiped_status.role,
                Role::Leader,
                "a wiped node must be fenced by the conf-clock rule, not elected"
            );
            let intact_status = status_of(nodes[intact].as_ref().unwrap()).expect("status");
            if intact_status.role == Role::Leader {
                intact_led = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        assert!(intact_led, "the intact follower must win the election");

        for node in nodes.into_iter().flatten() {
            node.shutdown();
        }
    }
}
