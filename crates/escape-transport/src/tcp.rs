//! TCP transport: a full mesh of length-prefixed framed connections using
//! the `escape-wire` codec.
//!
//! Each node owns a listener; inbound connections get a reader thread that
//! parses frames into [`Envelope`]s and forwards them to the node loop.
//! Outbound connections are opened lazily per peer and dropped on error
//! (the next send reconnects) — message loss during reconnection is just
//! network loss to the protocol.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;

use bytes::BytesMut;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;

use escape_core::engine::Node;
use escape_core::message::Message;
use escape_core::statemachine::StateMachine;
use escape_core::types::ServerId;
use escape_wire::{write_frame, Decode, Encode, Envelope, FrameReader};

use crate::clock::RuntimeClock;
use crate::runtime::{node_loop, NodeInput, Outbound};
use crate::spec::ProtocolSpec;

/// Lazily connected, mutex-guarded outbound links.
struct TcpOutbound {
    from: ServerId,
    addrs: HashMap<ServerId, SocketAddr>,
    links: Mutex<HashMap<ServerId, TcpStream>>,
}

impl TcpOutbound {
    fn connection(&self, to: ServerId) -> Option<TcpStream> {
        let mut links = self.links.lock();
        if let Some(stream) = links.get(&to) {
            if let Ok(clone) = stream.try_clone() {
                return Some(clone);
            }
            links.remove(&to);
        }
        let addr = self.addrs.get(&to)?;
        let stream = TcpStream::connect_timeout(addr, std::time::Duration::from_millis(250)).ok()?;
        stream.set_nodelay(true).ok();
        let clone = stream.try_clone().ok()?;
        links.insert(to, stream);
        Some(clone)
    }
}

impl Outbound for TcpOutbound {
    fn send(&self, to: ServerId, msg: Message) {
        let Some(mut stream) = self.connection(to) else {
            return; // unreachable peer == lost message
        };
        let envelope = Envelope {
            from: self.from,
            message: msg,
        };
        let mut frame = BytesMut::new();
        write_frame(&mut frame, &envelope.to_bytes());
        if stream.write_all(&frame).is_err() {
            // Drop the broken link; the next send reconnects.
            self.links.lock().remove(&to);
        }
    }
}

/// One TCP consensus node: its listener, reader threads, and node loop.
#[derive(Debug)]
pub struct TcpNode {
    id: ServerId,
    inbox: Sender<NodeInput>,
    threads: Vec<JoinHandle<()>>,
}

impl TcpNode {
    /// Boots server `id` of a cluster whose listen addresses are `addrs`
    /// (every node must appear, including `id` itself).
    ///
    /// # Panics
    ///
    /// Panics if `addrs` lacks `id` or the listener cannot bind.
    pub fn spawn(
        id: ServerId,
        addrs: HashMap<ServerId, SocketAddr>,
        spec: ProtocolSpec,
        seed: u64,
        state_machine: Box<dyn StateMachine>,
    ) -> Self {
        let my_addr = *addrs.get(&id).expect("own address present");
        let listener = TcpListener::bind(my_addr).expect("bind listener");
        let ids: Vec<ServerId> = {
            let mut v: Vec<ServerId> = addrs.keys().copied().collect();
            v.sort_unstable();
            v
        };
        let n = ids.len();

        let (tx, rx) = unbounded::<NodeInput>();
        let mut threads = Vec::new();

        // Acceptor: one reader thread per inbound connection.
        {
            let tx = tx.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("escape-tcp-accept-{}", id.get()))
                    .spawn(move || {
                        for stream in listener.incoming() {
                            let Ok(stream) = stream else { break };
                            stream.set_nodelay(true).ok();
                            let tx = tx.clone();
                            // Reader threads exit when the peer disconnects
                            // or the inbox closes.
                            std::thread::spawn(move || read_loop(stream, tx));
                        }
                    })
                    .expect("spawn acceptor"),
            );
        }

        let node = Node::builder(id, ids)
            .policy(spec.build_policy(id, n, seed.wrapping_add(id.get() as u64)))
            .state_machine(state_machine)
            .options(ProtocolSpec::local_options())
            .build();
        let outbound: Arc<dyn Outbound + Sync> = Arc::new(TcpOutbound {
            from: id,
            addrs,
            links: Mutex::new(HashMap::new()),
        });
        let clock = RuntimeClock::start();
        threads.push(
            std::thread::Builder::new()
                .name(format!("escape-tcp-node-{}", id.get()))
                .spawn(move || node_loop(node, rx, outbound, clock))
                .expect("spawn node loop"),
        );

        TcpNode {
            id,
            inbox: tx,
            threads,
        }
    }

    /// This node's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// The node's input channel (peer messages, proposals, queries).
    pub fn inbox(&self) -> Sender<NodeInput> {
        self.inbox.clone()
    }

    /// Requests shutdown; the acceptor thread is detached by dropping its
    /// listener-side connections (process exit cleans up the rest).
    pub fn shutdown(self) {
        let _ = self.inbox.send(NodeInput::Shutdown);
        // Join only the node loop (last handle); the acceptor blocks in
        // `incoming()` and is reclaimed at process exit.
        if let Some(handle) = self.threads.into_iter().last() {
            let _ = handle.join();
        }
    }
}

fn read_loop(mut stream: TcpStream, tx: Sender<NodeInput>) {
    let mut reader = FrameReader::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return,
            Ok(n) => n,
        };
        reader.extend(&chunk[..n]);
        loop {
            match reader.next_frame() {
                Ok(Some(mut frame)) => match Envelope::decode(&mut frame) {
                    Ok(envelope) => {
                        if tx
                            .send(NodeInput::Peer(envelope.from, envelope.message))
                            .is_err()
                        {
                            return;
                        }
                    }
                    Err(_) => return, // corrupt stream: drop the connection
                },
                Ok(None) => break,
                Err(_) => return,
            }
        }
    }
}

/// Allocates `n` loopback addresses with OS-assigned free ports.
pub fn loopback_addrs(n: usize) -> HashMap<ServerId, SocketAddr> {
    (1..=n as u32)
        .map(|i| {
            let listener = TcpListener::bind("127.0.0.1:0").expect("probe free port");
            let addr = listener.local_addr().expect("local addr");
            // Listener drops here; the port is free for the node to bind.
            (ServerId::new(i), addr)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::NodeStatus;
    use bytes::Bytes;
    use crossbeam::channel::bounded;
    use escape_core::types::Role;

    fn status_of(node: &TcpNode) -> Option<NodeStatus> {
        let (tx, rx) = bounded(1);
        node.inbox().send(NodeInput::Query { reply: tx }).ok()?;
        rx.recv_timeout(std::time::Duration::from_secs(1)).ok()
    }

    #[test]
    fn tcp_cluster_elects_and_commits() {
        let addrs = loopback_addrs(3);
        let nodes: Vec<TcpNode> = (1..=3u32)
            .map(|i| {
                TcpNode::spawn(
                    ServerId::new(i),
                    addrs.clone(),
                    ProtocolSpec::escape_local(),
                    99,
                    Box::new(escape_core::statemachine::NullStateMachine),
                )
            })
            .collect();

        // Wait for a leader over real sockets.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let leader_index = loop {
            assert!(
                std::time::Instant::now() < deadline,
                "no TCP leader within 10s"
            );
            if let Some(i) = nodes
                .iter()
                .position(|n| status_of(n).is_some_and(|s| s.role == Role::Leader))
            {
                break i;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        };

        // Propose through the leader and wait for the commit to apply.
        let (tx, rx) = bounded(1);
        nodes[leader_index]
            .inbox()
            .send(NodeInput::Propose {
                command: Bytes::from_static(b"over-tcp"),
                reply: tx,
            })
            .unwrap();
        let index = rx
            .recv_timeout(std::time::Duration::from_secs(2))
            .expect("reply")
            .expect("accepted");
        let (atx, arx) = bounded(1);
        nodes[leader_index]
            .inbox()
            .send(NodeInput::AwaitApplied {
                index,
                reply: atx,
            })
            .unwrap();
        arx.recv_timeout(std::time::Duration::from_secs(5))
            .expect("applied over TCP");

        for node in nodes {
            node.shutdown();
        }
    }
}
