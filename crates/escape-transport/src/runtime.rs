//! The real-time node loop shared by every transport.
//!
//! One OS thread per consensus node: it multiplexes an inbox channel
//! (peer messages + client commands + control) with the engine's armed
//! timers via `recv_timeout`, and pushes outbound messages through an
//! [`Outbound`] implementation (channel mesh, TCP mesh, …).

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use escape_core::engine::{Action, Node, ProposeError, TimerKind, TimerToken};
use escape_core::message::Message;
use escape_core::metrics::NodeMetrics;
use escape_core::time::Time;
use escape_core::types::{LogIndex, Role, ServerId, Term};

use crate::clock::RuntimeClock;

/// Sends messages to peers on behalf of a node.
pub trait Outbound: Send + 'static {
    /// Best-effort delivery of `msg` to `to` (errors are the network's
    /// problem; the protocol tolerates loss).
    fn send(&self, to: ServerId, msg: Message);

    /// Total outbound frames this node has dropped under backpressure
    /// (bounded per-peer queues shed oldest-first). Transports without a
    /// bounded queue report zero.
    fn frames_dropped(&self) -> u64 {
        0
    }

    /// Outbound frames dropped to one specific peer, for the engine's
    /// per-peer backpressure clamp. Transports without a bounded queue
    /// report zero.
    fn frames_dropped_to(&self, _to: ServerId) -> u64 {
        0
    }
}

/// A snapshot of a node's externally visible state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeStatus {
    /// The node.
    pub id: ServerId,
    /// Role right now.
    pub role: Role,
    /// Current term.
    pub term: Term,
    /// Last known leader.
    pub leader_hint: Option<ServerId>,
    /// Commit index.
    pub commit_index: LogIndex,
    /// Applied index.
    pub last_applied: LogIndex,
    /// Log length.
    pub log_len: usize,
    /// The engine's protocol counters at snapshot time — including the
    /// replication pipeline's batch-size and commit-latency histograms.
    pub metrics: NodeMetrics,
    /// Outbound frames this node's transport shed under backpressure.
    pub frames_dropped: u64,
}

/// Everything a node thread can receive.
pub enum NodeInput {
    /// A protocol message from a peer.
    Peer(ServerId, Message),
    /// A client command; the reply carries the assigned index or the
    /// refusal.
    Propose {
        /// Encoded state-machine command.
        command: Bytes,
        /// Where to send the outcome.
        reply: Sender<Result<LogIndex, ProposeError>>,
    },
    /// A batch of linearizable read-only queries, answered off the log via
    /// the engine's ReadIndex/lease path; the reply carries one response
    /// per query, in order, or the leadership refusal.
    Read {
        /// Encoded state-machine queries.
        queries: Vec<Bytes>,
        /// Where to send the outcome.
        reply: Sender<Result<Vec<Bytes>, ProposeError>>,
    },
    /// Ask for a status snapshot.
    Query {
        /// Where to send the snapshot.
        reply: Sender<NodeStatus>,
    },
    /// Register interest in the application of `index`; the reply fires
    /// with the state machine's response once applied.
    AwaitApplied {
        /// The awaited log index.
        index: LogIndex,
        /// Where to send the apply result.
        reply: Sender<Bytes>,
    },
    /// Simulated crash: drop all input and timers until `Resume`.
    Pause,
    /// Recover from `Pause` (the engine's volatile state resets, persistent
    /// state survives — same semantics as the simulator's restart).
    Resume,
    /// Stop the thread.
    Shutdown,
}

/// Runs a node until shutdown. This is the body of every transport's
/// per-node thread.
pub fn node_loop(
    mut node: Node,
    inbox: Receiver<NodeInput>,
    outbound: Arc<dyn Outbound + Sync>,
    clock: RuntimeClock,
) {
    let mut timers: BTreeMap<TimerKind, (TimerToken, Time)> = BTreeMap::new();
    let mut apply_waiters: HashMap<LogIndex, Vec<Sender<Bytes>>> = HashMap::new();
    // Pending read batches, keyed by the engine's batch id; each client's
    // reply channel remembers how many of the batch's queries are its own.
    let mut read_waiters: ReadWaiters = HashMap::new();
    // Recent apply results, so a client that registers interest just after
    // the apply still gets its response (bounded window).
    let mut recent_results: BTreeMap<LogIndex, Bytes> = BTreeMap::new();
    let mut paused = false;
    // Per-peer dropped-frame counters as of the last backpressure poll.
    let peers: Vec<ServerId> = node.peers().to_vec();
    let mut drops_seen: BTreeMap<ServerId, u64> = BTreeMap::new();

    let actions = node.start(clock.now());
    absorb(
        actions,
        &mut timers,
        &mut apply_waiters,
        &mut read_waiters,
        &mut recent_results,
        &outbound,
    );

    loop {
        // Fire every due timer before touching the inbox: a node whose
        // inbox never drains (a busy leader, a follower being streamed a
        // log) must still heartbeat and notice election deadlines —
        // firing only when `recv_timeout` times out would starve them.
        if !paused {
            // Backpressure hookup: a peer whose outbound queue shed
            // frames since the last poll gets its pipelining window
            // clamped — blindly topping up credit would feed the drop.
            for &peer in &peers {
                let dropped = outbound.frames_dropped_to(peer);
                let seen = drops_seen.entry(peer).or_insert(0);
                if dropped > *seen {
                    *seen = dropped;
                    node.note_backpressure(peer);
                }
            }

            let now = clock.now();
            let due: Vec<(TimerKind, TimerToken)> = timers
                .iter()
                .filter(|(_, (_, d))| *d <= now)
                .map(|(k, (t, _))| (*k, *t))
                .collect();
            for (kind, token) in due {
                // An earlier handler in this batch may have re-armed this
                // kind with a fresh token; firing the snapshotted one would
                // delete the new timer and no-op in the engine.
                if timers.get(&kind).map(|(t, _)| *t) != Some(token) {
                    continue;
                }
                timers.remove(&kind);
                let actions = node.handle_timer(token, clock.now());
                absorb(
                    actions,
                    &mut timers,
                    &mut apply_waiters,
                    &mut read_waiters,
                    &mut recent_results,
                    &outbound,
                );
            }
        }

        // Wait for the earliest timer or the next input, whichever first.
        let next_deadline = timers.values().map(|(_, d)| *d).min();
        let wait = match next_deadline {
            Some(deadline) if !paused => clock
                .until(deadline)
                .unwrap_or(std::time::Duration::ZERO),
            // Paused nodes and idle nodes just park on the inbox.
            _ => std::time::Duration::from_millis(50),
        };

        let first = match inbox.recv_timeout(wait) {
            Ok(input) => input,
            // Due timers fire at the top of the next iteration.
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        // `carry` holds the non-proposal input a proposal drain pulled off
        // the inbox; it is processed in the same pass, in arrival order.
        let mut carry = Some(first);
        while let Some(input) = carry.take() {
            match input {
                NodeInput::Shutdown => return,
                NodeInput::Pause => {
                    paused = true;
                    timers.clear();
                    apply_waiters.clear();
                    for (_, splits) in read_waiters.drain() {
                        for (reply, _) in splits {
                            let _ = reply.send(Err(ProposeError::NotLeader { hint: None }));
                        }
                    }
                }
                NodeInput::Resume => {
                    if paused {
                        paused = false;
                        let actions = node.restart(clock.now());
                        absorb(
                            actions,
                            &mut timers,
                            &mut apply_waiters,
                            &mut read_waiters,
                            &mut recent_results,
                            &outbound,
                        );
                    }
                }
                NodeInput::Peer(from, msg) => {
                    if !paused {
                        let actions = node.handle_message(from, msg, clock.now());
                        absorb(
                            actions,
                            &mut timers,
                            &mut apply_waiters,
                            &mut read_waiters,
                            &mut recent_results,
                            &outbound,
                        );
                    }
                }
                NodeInput::Propose { command, reply } => {
                    // Proposal-queue drain: grab every proposal already
                    // waiting in the inbox (bounded) so one engine batch —
                    // one WAL flush, one fan-out — covers them all. A
                    // non-proposal input ends the drain and is carried
                    // into the next pass, preserving arrival order.
                    let mut commands = vec![command];
                    let mut replies = vec![reply];
                    while commands.len() < PROPOSE_BATCH_MAX {
                        match inbox.try_recv() {
                            Ok(NodeInput::Propose { command, reply }) => {
                                commands.push(command);
                                replies.push(reply);
                            }
                            Ok(other) => {
                                carry = Some(other);
                                break;
                            }
                            Err(_) => break,
                        }
                    }
                    if paused {
                        for reply in replies {
                            let _ = reply.send(Err(ProposeError::NotLeader { hint: None }));
                        }
                    } else {
                        match node.propose_batch(commands, clock.now()) {
                            Ok((indexes, actions)) => {
                                for (reply, index) in replies.into_iter().zip(indexes) {
                                    let _ = reply.send(Ok(index));
                                }
                                absorb(
                                    actions,
                                    &mut timers,
                                    &mut apply_waiters,
                                    &mut read_waiters,
                                    &mut recent_results,
                                    &outbound,
                                );
                            }
                            Err(e) => {
                                for reply in replies {
                                    let _ = reply.send(Err(e));
                                }
                            }
                        }
                    }
                }
                NodeInput::Read { queries, reply } => {
                    // Read-queue drain, mirroring the proposal drain: every
                    // read batch already waiting in the inbox shares one
                    // engine confirmation round. A non-read input ends the
                    // drain and is carried into the next pass.
                    let mut queries = queries;
                    let mut splits = vec![(reply, queries.len())];
                    while queries.len() < PROPOSE_BATCH_MAX {
                        match inbox.try_recv() {
                            Ok(NodeInput::Read { queries: more, reply }) => {
                                splits.push((reply, more.len()));
                                queries.extend(more);
                            }
                            Ok(other) => {
                                carry = Some(other);
                                break;
                            }
                            Err(_) => break,
                        }
                    }
                    if paused {
                        for (reply, _) in splits {
                            let _ = reply.send(Err(ProposeError::NotLeader { hint: None }));
                        }
                    } else {
                        match node.read_batch(queries, clock.now()) {
                            Ok((batch, actions)) => {
                                // Register before absorbing: a lease-path
                                // batch is already ReadReady in `actions`.
                                read_waiters.insert(batch, splits);
                                absorb(
                                    actions,
                                    &mut timers,
                                    &mut apply_waiters,
                                    &mut read_waiters,
                                    &mut recent_results,
                                    &outbound,
                                );
                            }
                            Err(e) => {
                                for (reply, _) in splits {
                                    let _ = reply.send(Err(e));
                                }
                            }
                        }
                    }
                }
                NodeInput::Query { reply } => {
                    let _ = reply.send(NodeStatus {
                        id: node.id(),
                        role: if paused { Role::Follower } else { node.role() },
                        term: node.current_term(),
                        leader_hint: node.leader_hint(),
                        commit_index: node.commit_index(),
                        last_applied: node.last_applied(),
                        log_len: node.log().len(),
                        metrics: *node.metrics(),
                        frames_dropped: outbound.frames_dropped(),
                    });
                }
                NodeInput::AwaitApplied { index, reply } => {
                    if node.last_applied() >= index {
                        // Already applied: serve from the recent-results
                        // window (empty payload if it aged out or was a
                        // no-op slot).
                        let result = recent_results.get(&index).cloned().unwrap_or_default();
                        let _ = reply.send(result);
                    } else {
                        apply_waiters.entry(index).or_default().push(reply);
                    }
                }
            }
        }
    }
}

/// Cap on proposals drained into one engine batch: bounds both the batch
/// latency (nothing waits behind more than this many queued commands) and
/// the size of the single `AppendEntries` window a batch produces.
pub const PROPOSE_BATCH_MAX: usize = 256;

/// How many apply results the node loop keeps for late [`NodeInput::AwaitApplied`]
/// registrations.
const RESULT_WINDOW: usize = 1024;

/// Pending linearizable read batches: engine batch id → the client reply
/// channels, each with its share of the batch's queries (in order).
type ReadWaiters = HashMap<u64, Vec<(Sender<Result<Vec<Bytes>, ProposeError>>, usize)>>;

fn absorb(
    actions: Vec<Action>,
    timers: &mut BTreeMap<TimerKind, (TimerToken, Time)>,
    apply_waiters: &mut HashMap<LogIndex, Vec<Sender<Bytes>>>,
    read_waiters: &mut ReadWaiters,
    recent_results: &mut BTreeMap<LogIndex, Bytes>,
    outbound: &Arc<dyn Outbound + Sync>,
) {
    for action in actions {
        match action {
            Action::Send { to, msg, .. } => outbound.send(to, msg),
            Action::SetTimer { token, deadline } => {
                timers.insert(token.kind, (token, deadline));
            }
            Action::Applied { index, result } => {
                if let Some(waiters) = apply_waiters.remove(&index) {
                    for w in waiters {
                        let _ = w.send(result.clone());
                    }
                }
                recent_results.insert(index, result);
                while recent_results.len() > RESULT_WINDOW {
                    let Some(oldest) = recent_results.keys().next().copied() else {
                        break;
                    };
                    recent_results.remove(&oldest);
                }
            }
            Action::ReadReady { batch, results } => {
                if let Some(splits) = read_waiters.remove(&batch) {
                    let mut results = results.into_iter();
                    for (reply, count) in splits {
                        let chunk: Vec<Bytes> = results.by_ref().take(count).collect();
                        let _ = reply.send(Ok(chunk));
                    }
                }
            }
            Action::ReadFailed { batch, error } => {
                if let Some(splits) = read_waiters.remove(&batch) {
                    for (reply, _) in splits {
                        let _ = reply.send(Err(error));
                    }
                }
            }
            Action::BecameCandidate { .. }
            | Action::BecameLeader { .. }
            | Action::BecameFollower { .. }
            | Action::Committed { .. } => {}
        }
    }
}

/// A thread-safe registry of node inboxes — the "switchboard" transports
/// route through.
#[derive(Clone, Default)]
pub struct Switchboard {
    inner: Arc<Mutex<HashMap<ServerId, Sender<NodeInput>>>>,
}

impl Switchboard {
    /// An empty switchboard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `id`'s inbox.
    pub fn register(&self, id: ServerId, sender: Sender<NodeInput>) {
        self.inner.lock().insert(id, sender);
    }

    /// The inbox for `id`, if registered.
    pub fn lookup(&self, id: ServerId) -> Option<Sender<NodeInput>> {
        self.inner.lock().get(&id).cloned()
    }

    /// All registered ids.
    pub fn ids(&self) -> Vec<ServerId> {
        self.inner.lock().keys().copied().collect()
    }
}

impl std::fmt::Debug for Switchboard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Switchboard")
            .field("nodes", &self.inner.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switchboard_registers_and_looks_up() {
        let board = Switchboard::new();
        assert!(board.lookup(ServerId::new(1)).is_none());
        let (tx, rx) = crossbeam::channel::unbounded();
        board.register(ServerId::new(1), tx);
        let found = board.lookup(ServerId::new(1)).expect("registered");
        found.send(NodeInput::Pause).unwrap();
        assert!(matches!(rx.recv().unwrap(), NodeInput::Pause));
        assert_eq!(board.ids(), vec![ServerId::new(1)]);
    }

    #[test]
    fn switchboard_clones_share_state() {
        let board = Switchboard::new();
        let clone = board.clone();
        let (tx, _rx) = crossbeam::channel::unbounded();
        clone.register(ServerId::new(7), tx);
        assert!(board.lookup(ServerId::new(7)).is_some());
        assert!(format!("{board:?}").contains("nodes"));
    }

    #[test]
    fn node_status_is_comparable() {
        let a = NodeStatus {
            id: ServerId::new(1),
            role: Role::Follower,
            term: Term::ZERO,
            leader_hint: None,
            commit_index: LogIndex::ZERO,
            last_applied: LogIndex::ZERO,
            log_len: 0,
            metrics: NodeMetrics::new(),
            frames_dropped: 0,
        };
        assert_eq!(a.clone(), a);
    }
}
