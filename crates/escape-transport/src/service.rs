//! Server-side client serving: turns [`ClientRequest`] frames arriving on
//! the peer listener into consensus operations and streams
//! [`ClientResponse`]s back, pipelined and out of order.
//!
//! Connection anatomy (all threads per connection, all exit when it drops):
//!
//! * The acceptor's reader thread — after it sees the
//!   [`CLIENT_HELLO`](escape_wire::CLIENT_HELLO) frame — becomes the
//!   connection's **dispatcher**: it decodes requests, routes each through
//!   the node's [`ClientRouter`], and either answers immediately
//!   (`FetchMap`, redirects) or submits the operation to its group and
//!   parks the pending reply with that group's completer.
//! * One **completer** thread per group touched by the connection waits on
//!   engine replies and emits the response. Completers are per group so a
//!   wedged or leaderless shard only stalls *its own* pending replies —
//!   operations on other shards keep completing.
//! * One **writer** thread owns the socket's send side and serializes
//!   responses from every completer; nothing ever blocks on the socket
//!   while holding shared state.
//!
//! Responses carry the request's `id`; ordering across groups (and even
//! within one group between reads and writes) is deliberately unspecified.

use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use bytes::{Bytes, BytesMut};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};

use escape_core::engine::ProposeError;
use escape_core::types::{GroupId, LogIndex};
use escape_wire::{
    write_frame, ClientRequest, ClientResponse, Encode, FrameReader, RequestBody, ResponseBody,
    WireShardMap,
};

use crate::runtime::NodeInput;

/// How long a completer waits for the engine's accept/read reply before
/// answering [`ResponseBody::Unavailable`].
const REPLY_TIMEOUT: Duration = Duration::from_secs(2);
/// How long a completer waits for an accepted write to apply. Longer than
/// [`REPLY_TIMEOUT`]: acceptance was fast, but the commit needs a quorum
/// round trip (possibly across a failover).
const APPLY_TIMEOUT: Duration = Duration::from_secs(5);

/// Where a client operation on `(group, key)` should go, as judged by the
/// serving node's routing state.
#[derive(Clone, Debug)]
pub enum RouteVerdict {
    /// The group is hosted here and owns the key: submit to its inbox.
    Local(Sender<NodeInput>),
    /// The key belongs to a different group (stale client map).
    Redirect {
        /// The group the client addressed.
        asked: GroupId,
        /// The owner under the server's map.
        owner: GroupId,
        /// The server's map version.
        map_version: u64,
    },
    /// The named group is not known here at all.
    Unknown,
}

/// How a serving node resolves client operations: single-group nodes route
/// everything to their one inbox; sharded nodes consult their `ShardMap`.
pub trait ClientRouter: Send + Sync + std::fmt::Debug {
    /// Routes one operation addressed to `group` for `key`.
    fn route(&self, group: GroupId, key: &[u8]) -> RouteVerdict;

    /// The node's current shard map, in wire form (for
    /// [`RequestBody::FetchMap`]).
    fn map_snapshot(&self) -> WireShardMap;
}

/// The per-node client-serving half the acceptor hands hello'd connections
/// to. Cheap to clone (one `Arc`).
#[derive(Clone, Debug)]
pub struct ClientService {
    router: Arc<dyn ClientRouter>,
}

/// A submitted operation waiting for its engine reply, parked with the
/// group's completer thread.
enum PendingOp {
    Write {
        id: u64,
        /// The group inbox, for the follow-up `AwaitApplied`.
        inbox: Sender<NodeInput>,
        accept: Receiver<Result<LogIndex, ProposeError>>,
    },
    Read {
        id: u64,
        accept: Receiver<Result<Vec<Bytes>, ProposeError>>,
    },
}

impl ClientService {
    /// A service answering through `router`.
    pub fn new(router: Arc<dyn ClientRouter>) -> Self {
        ClientService { router }
    }

    /// Serves one hello'd client connection to completion. `reader` is the
    /// acceptor's frame reader, carrying whatever bytes followed the hello
    /// in the same read. Runs on the calling (reader) thread; returns when
    /// the client disconnects or the stream corrupts.
    pub fn serve(self, stream: TcpStream, mut reader: FrameReader) {
        let Ok(mut write_half) = stream.try_clone() else {
            return;
        };
        let (resp_tx, resp_rx) = unbounded::<ClientResponse>();
        let writer = std::thread::spawn(move || {
            // Sole owner of the send side: blocking writes are fine here
            // and serialize responses from every completer.
            for response in resp_rx.iter() {
                let mut frame = BytesMut::new();
                write_frame(&mut frame, &response.to_bytes());
                if write_half.write_all(&frame).is_err() {
                    return; // client gone; dispatcher notices on read
                }
            }
        });

        let mut completers: HashMap<GroupId, Sender<PendingOp>> = HashMap::new();
        self.dispatch_loop(stream, &mut reader, &mut completers, &resp_tx);

        // Dropping the completer senders and the response sender unwinds
        // the helper threads; join the writer so buffered responses for
        // already-completed operations still reach the wire.
        drop(completers);
        drop(resp_tx);
        let _ = writer.join();
    }

    /// Decodes and routes requests until the connection dies.
    fn dispatch_loop(
        &self,
        mut stream: TcpStream,
        reader: &mut FrameReader,
        completers: &mut HashMap<GroupId, Sender<PendingOp>>,
        resp_tx: &Sender<ClientResponse>,
    ) {
        use std::io::Read;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            // Drain every frame already buffered (the hello's read may
            // have carried pipelined requests) before blocking again.
            loop {
                match reader.next_frame() {
                    Ok(Some(mut frame)) => {
                        let Ok(request) =
                            <ClientRequest as escape_wire::Decode>::decode(&mut frame)
                        else {
                            return; // corrupt stream: drop the connection
                        };
                        if !self.handle(request, completers, resp_tx) {
                            return;
                        }
                    }
                    Ok(None) => break,
                    Err(_) => return,
                }
            }
            let n = match stream.read(&mut chunk) {
                Ok(0) | Err(_) => return,
                Ok(n) => n,
            };
            // lint:allow(panic): n is the byte count just read into chunk, so n <= chunk.len()
            reader.extend(&chunk[..n]);
        }
    }

    /// Routes one request. Returns `false` when the connection should
    /// close (response channel gone = writer dead).
    fn handle(
        &self,
        request: ClientRequest,
        completers: &mut HashMap<GroupId, Sender<PendingOp>>,
        resp_tx: &Sender<ClientResponse>,
    ) -> bool {
        let ClientRequest { id, body } = request;
        let immediate = match body {
            RequestBody::FetchMap => Some(ResponseBody::Map(self.router.map_snapshot())),
            RequestBody::Write {
                group,
                key,
                command,
            } => match self.router.route(group, &key) {
                RouteVerdict::Local(inbox) => {
                    let (tx, rx) = bounded(1);
                    if inbox
                        .send(NodeInput::Propose { command, reply: tx })
                        .is_err()
                    {
                        Some(ResponseBody::Unavailable)
                    } else {
                        let op = PendingOp::Write {
                            id,
                            inbox,
                            accept: rx,
                        };
                        if completer_for(completers, group, resp_tx).send(op).is_err() {
                            Some(ResponseBody::Unavailable)
                        } else {
                            None
                        }
                    }
                }
                RouteVerdict::Redirect {
                    asked,
                    owner,
                    map_version,
                } => Some(ResponseBody::Redirect {
                    asked,
                    owner,
                    map_version,
                }),
                RouteVerdict::Unknown => Some(ResponseBody::Unavailable),
            },
            RequestBody::Read { group, key, query } => match self.router.route(group, &key) {
                RouteVerdict::Local(inbox) => {
                    let (tx, rx) = bounded(1);
                    if inbox
                        .send(NodeInput::Read {
                            queries: vec![query],
                            reply: tx,
                        })
                        .is_err()
                    {
                        Some(ResponseBody::Unavailable)
                    } else {
                        let op = PendingOp::Read { id, accept: rx };
                        if completer_for(completers, group, resp_tx).send(op).is_err() {
                            Some(ResponseBody::Unavailable)
                        } else {
                            None
                        }
                    }
                }
                RouteVerdict::Redirect {
                    asked,
                    owner,
                    map_version,
                } => Some(ResponseBody::Redirect {
                    asked,
                    owner,
                    map_version,
                }),
                RouteVerdict::Unknown => Some(ResponseBody::Unavailable),
            },
        };
        match immediate {
            Some(body) => resp_tx.send(ClientResponse { id, body }).is_ok(),
            None => true,
        }
    }
}

/// The completer channel for `group`, spawning its thread on first use.
fn completer_for<'a>(
    completers: &'a mut HashMap<GroupId, Sender<PendingOp>>,
    group: GroupId,
    resp_tx: &Sender<ClientResponse>,
) -> &'a Sender<PendingOp> {
    completers.entry(group).or_insert_with(|| {
        let (ops_tx, ops_rx) = unbounded::<PendingOp>();
        let resp = resp_tx.clone();
        std::thread::spawn(move || complete_loop(ops_rx, resp));
        ops_tx
    })
}

/// One group's completer: resolves parked operations in submission order
/// (within the group — exactly the order the engine will answer them).
fn complete_loop(ops: Receiver<PendingOp>, resp: Sender<ClientResponse>) {
    for op in ops.iter() {
        let (id, body) = match op {
            PendingOp::Write { id, inbox, accept } => {
                let body = match accept.recv_timeout(REPLY_TIMEOUT) {
                    Ok(Ok(index)) => await_applied(&inbox, index),
                    Ok(Err(ProposeError::NotLeader { hint })) => ResponseBody::NotLeader { hint },
                    Err(_) => ResponseBody::Unavailable,
                };
                (id, body)
            }
            PendingOp::Read { id, accept } => {
                let body = match accept.recv_timeout(REPLY_TIMEOUT) {
                    Ok(Ok(values)) => match values.into_iter().next() {
                        Some(value) => ResponseBody::Value(value),
                        None => ResponseBody::Unavailable,
                    },
                    Ok(Err(ProposeError::NotLeader { hint })) => ResponseBody::NotLeader { hint },
                    Err(_) => ResponseBody::Unavailable,
                };
                (id, body)
            }
        };
        if resp.send(ClientResponse { id, body }).is_err() {
            return; // connection gone; drain is pointless
        }
    }
}

/// Second half of a write: the command was accepted at `index`; wait for
/// it to apply so the response carries the state machine's result.
fn await_applied(inbox: &Sender<NodeInput>, index: LogIndex) -> ResponseBody {
    let (tx, rx) = bounded(1);
    if inbox
        .send(NodeInput::AwaitApplied { index, reply: tx })
        .is_err()
    {
        return ResponseBody::Unavailable;
    }
    match rx.recv_timeout(APPLY_TIMEOUT) {
        Ok(result) => ResponseBody::Written { index, result },
        Err(_) => ResponseBody::Unavailable,
    }
}
