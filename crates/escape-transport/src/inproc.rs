//! In-process transport: one thread per node, crossbeam channels as links.
//!
//! The smallest real-time deployment — useful for examples, soak tests,
//! and demonstrating that the sans-IO engine runs unchanged outside the
//! simulator.

use std::sync::Arc;
use std::thread::JoinHandle;

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded};

use escape_core::engine::ProposeError;
use escape_core::message::Message;
use escape_core::statemachine::StateMachine;
use escape_core::types::{LogIndex, Role, ServerId};

use crate::clock::RuntimeClock;
use crate::runtime::{node_loop, NodeInput, NodeStatus, Outbound, Switchboard};
use crate::spec::ProtocolSpec;

/// Routes outbound messages through the switchboard channels.
struct ChannelOutbound {
    from: ServerId,
    board: Switchboard,
}

impl Outbound for ChannelOutbound {
    fn send(&self, to: ServerId, msg: Message) {
        if let Some(inbox) = self.board.lookup(to) {
            // A full/disconnected inbox is indistinguishable from loss —
            // exactly what the protocol is built to tolerate.
            let _ = inbox.send(NodeInput::Peer(self.from, msg));
        }
    }
}

/// Client-facing errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// No leader is currently known/reachable.
    NoLeader,
    /// The cluster did not respond within the deadline.
    Timeout,
    /// The node refused the proposal.
    Refused(ProposeError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::NoLeader => f.write_str("no leader available"),
            ClientError::Timeout => f.write_str("request timed out"),
            ClientError::Refused(e) => write!(f, "refused: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// The longest any single internal reply wait may park the caller, even
/// when the caller's own deadline is further out: a dead node thread
/// should read as "no answer" in bounded time, not hang a generous
/// client budget.
const MAX_REPLY_WAIT: std::time::Duration = std::time::Duration::from_secs(1);

/// The wait left until `deadline`; `None` once the deadline has passed
/// (callers treat that as their timeout).
fn remaining_until(deadline: std::time::Instant) -> Option<std::time::Duration> {
    let left = deadline.saturating_duration_since(crate::clock::monotonic_now());
    if left.is_zero() {
        return None;
    }
    Some(left)
}

/// A running in-process cluster.
///
/// # Examples
///
/// ```no_run
/// use escape_transport::inproc::InprocCluster;
/// use escape_transport::spec::ProtocolSpec;
///
/// let cluster = InprocCluster::spawn(3, ProtocolSpec::escape_local(), 42);
/// let leader = cluster
///     .wait_for_leader(std::time::Duration::from_secs(3))
///     .expect("a leader must emerge");
/// println!("leader: {leader}");
/// cluster.shutdown();
/// ```
#[derive(Debug)]
pub struct InprocCluster {
    board: Switchboard,
    ids: Vec<ServerId>,
    threads: Vec<JoinHandle<()>>,
}

impl InprocCluster {
    /// Spawns `n` nodes with [`NullStateMachine`]s.
    ///
    /// [`NullStateMachine`]: escape_core::statemachine::NullStateMachine
    pub fn spawn(n: usize, spec: ProtocolSpec, seed: u64) -> Self {
        Self::spawn_with(n, spec, seed, |_| {
            Box::new(escape_core::statemachine::NullStateMachine)
        })
    }

    /// Spawns `n` nodes, building each node's state machine with
    /// `make_sm`.
    pub fn spawn_with(
        n: usize,
        spec: ProtocolSpec,
        seed: u64,
        make_sm: impl Fn(ServerId) -> Box<dyn StateMachine>,
    ) -> Self {
        assert!(n > 0, "cluster needs at least one node");
        let ids: Vec<ServerId> = (1..=n as u32).map(ServerId::new).collect();
        let board = Switchboard::new();
        let clock = RuntimeClock::start();
        let mut threads = Vec::with_capacity(n);

        // Register all inboxes first so early messages route.
        let mut inboxes = Vec::with_capacity(n);
        for id in &ids {
            let (tx, rx) = unbounded::<NodeInput>();
            board.register(*id, tx);
            inboxes.push(rx);
        }

        for (id, inbox) in ids.iter().zip(inboxes) {
            let node = escape_core::engine::Node::builder(*id, ids.clone())
                .policy(spec.build_policy(*id, n, seed.wrapping_add(id.get() as u64)))
                .state_machine(make_sm(*id))
                .options(ProtocolSpec::local_options())
                .build();
            let outbound: Arc<dyn Outbound + Sync> = Arc::new(ChannelOutbound {
                from: *id,
                board: board.clone(),
            });
            let handle = std::thread::Builder::new()
                .name(format!("escape-node-{}", id.get()))
                .spawn(move || node_loop(node, inbox, outbound, clock))
                // lint:allow(panic): thread-spawn failure at startup is fatal by design
                .expect("spawn node thread");
            threads.push(handle);
        }

        InprocCluster {
            board,
            ids,
            threads,
        }
    }

    /// All node ids.
    pub fn ids(&self) -> &[ServerId] {
        &self.ids
    }

    /// A status snapshot of `id` (blocks briefly).
    pub fn status(&self, id: ServerId) -> Option<NodeStatus> {
        let deadline = crate::clock::monotonic_now() + MAX_REPLY_WAIT;
        self.status_before(id, deadline)
    }

    /// [`InprocCluster::status`] with the wait clamped to `deadline`: a
    /// wedged node thread (e.g. mid-apply) costs the caller at most its
    /// own remaining budget, never the full default wait.
    fn status_before(
        &self,
        id: ServerId,
        deadline: std::time::Instant,
    ) -> Option<NodeStatus> {
        let inbox = self.board.lookup(id)?;
        let (tx, rx) = bounded(1);
        inbox.send(NodeInput::Query { reply: tx }).ok()?;
        rx.recv_timeout(remaining_until(deadline)?.min(MAX_REPLY_WAIT)).ok()
    }

    /// Polls until some node reports itself leader, up to `timeout`.
    pub fn wait_for_leader(&self, timeout: std::time::Duration) -> Option<ServerId> {
        let deadline = crate::clock::monotonic_now() + timeout;
        while crate::clock::monotonic_now() < deadline {
            for id in &self.ids {
                if let Some(status) = self.status(*id) {
                    if status.role == Role::Leader {
                        return Some(*id);
                    }
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        None
    }

    /// Proposes `command` through the current leader and waits for it to be
    /// applied, returning `(index, state-machine response)`.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on missing leader, refusal, or timeout.
    pub fn propose_and_wait(
        &self,
        command: Bytes,
        timeout: std::time::Duration,
    ) -> Result<(LogIndex, Bytes), ClientError> {
        // Every wait below is clamped to the remaining deadline (this
        // used to hard-code 1 s waits, overshooting a short caller
        // timeout by up to a full second when a node thread stalled).
        let deadline = crate::clock::monotonic_now() + timeout;
        loop {
            if crate::clock::monotonic_now() >= deadline {
                return Err(ClientError::Timeout);
            }
            let Some(leader) = self.find_leader_before(deadline) else {
                std::thread::sleep(std::time::Duration::from_millis(20));
                continue;
            };
            let Some(inbox) = self.board.lookup(leader) else {
                continue;
            };
            let (tx, rx) = bounded(1);
            if inbox
                .send(NodeInput::Propose {
                    command: command.clone(),
                    reply: tx,
                })
                .is_err()
            {
                continue;
            }
            let Some(wait) = remaining_until(deadline) else {
                return Err(ClientError::Timeout);
            };
            match rx.recv_timeout(wait.min(MAX_REPLY_WAIT)) {
                Ok(Ok(index)) => {
                    // Wait for application.
                    let (atx, arx) = bounded(1);
                    let _ = inbox.send(NodeInput::AwaitApplied {
                        index,
                        reply: atx,
                    });
                    let Some(wait) = remaining_until(deadline) else {
                        return Err(ClientError::Timeout);
                    };
                    match arx.recv_timeout(wait) {
                        Ok(result) => return Ok((index, result)),
                        Err(_) => return Err(ClientError::Timeout),
                    }
                }
                Ok(Err(ProposeError::NotLeader { .. })) => {
                    // Leadership moved; retry.
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                Err(_) => return Err(ClientError::Timeout),
            }
        }
    }

    fn find_leader_before(&self, deadline: std::time::Instant) -> Option<ServerId> {
        self.ids
            .iter()
            .filter_map(|id| self.status_before(*id, deadline))
            .find(|s| s.role == Role::Leader)
            .map(|s| s.id)
    }

    /// Simulates a crash of `id` (the thread stops processing and drops
    /// state-dependent volatile data on resume).
    pub fn pause(&self, id: ServerId) {
        if let Some(inbox) = self.board.lookup(id) {
            let _ = inbox.send(NodeInput::Pause);
        }
    }

    /// Recovers a paused node.
    pub fn resume(&self, id: ServerId) {
        if let Some(inbox) = self.board.lookup(id) {
            let _ = inbox.send(NodeInput::Resume);
        }
    }

    /// Stops every node thread and joins them.
    pub fn shutdown(self) {
        for id in &self.ids {
            if let Some(inbox) = self.board.lookup(*id) {
                let _ = inbox.send(NodeInput::Shutdown);
            }
        }
        for handle in self.threads {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_nodes_elect_a_leader_in_real_time() {
        let cluster = InprocCluster::spawn(3, ProtocolSpec::escape_local(), 7);
        let leader = cluster
            .wait_for_leader(std::time::Duration::from_secs(5))
            .expect("leader within 5s");
        assert!(cluster.ids().contains(&leader));
        cluster.shutdown();
    }

    #[test]
    fn proposals_commit_and_apply() {
        let cluster = InprocCluster::spawn(3, ProtocolSpec::raft_local(), 11);
        cluster
            .wait_for_leader(std::time::Duration::from_secs(5))
            .expect("leader");
        let (index, _result) = cluster
            .propose_and_wait(
                Bytes::from_static(b"hello"),
                std::time::Duration::from_secs(5),
            )
            .expect("commit");
        assert!(index.get() >= 1);
        cluster.shutdown();
    }

    /// Regression: `propose_and_wait` used to hard-code 1 s internal
    /// waits, so a 200 ms caller timeout could cost over a second when a
    /// node thread stalled (here: wedged inside a slow `apply`). Every
    /// wait is now clamped to the caller's remaining deadline.
    #[test]
    fn propose_and_wait_respects_short_timeouts_when_a_node_wedges() {
        /// Applies sleep long enough to wedge the single node thread
        /// across the whole short-timeout call below.
        #[derive(Debug)]
        struct SlowApply;
        impl escape_core::statemachine::StateMachine for SlowApply {
            fn apply(&mut self, _index: LogIndex, _command: &Bytes) -> Bytes {
                std::thread::sleep(std::time::Duration::from_millis(1500));
                Bytes::new()
            }
        }

        let cluster =
            InprocCluster::spawn_with(1, ProtocolSpec::raft_local(), 3, |_| Box::new(SlowApply));
        let leader = cluster
            .wait_for_leader(std::time::Duration::from_secs(5))
            .expect("single node elects itself");

        // Wedge the node thread: a single-node cluster commits and
        // applies inline while handling the proposal, so its loop sleeps
        // inside `apply` and answers nothing for ~1.5 s.
        let inbox = cluster.board.lookup(leader).expect("leader inbox");
        let (tx, _rx) = bounded(1);
        inbox
            .send(NodeInput::Propose {
                command: Bytes::from_static(b"wedge"),
                reply: tx,
            })
            .expect("enqueue wedge");
        std::thread::sleep(std::time::Duration::from_millis(100));

        let start = crate::clock::monotonic_now();
        let result = cluster.propose_and_wait(
            Bytes::from_static(b"short-deadline"),
            std::time::Duration::from_millis(200),
        );
        let elapsed = start.elapsed();
        assert_eq!(result, Err(ClientError::Timeout));
        assert!(
            elapsed < std::time::Duration::from_millis(700),
            "200 ms timeout overshot to {elapsed:?} — internal waits not \
             clamped to the caller's deadline"
        );
        cluster.shutdown();
    }

    #[test]
    fn leader_failover_in_real_time() {
        let cluster = InprocCluster::spawn(3, ProtocolSpec::escape_local(), 23);
        let first = cluster
            .wait_for_leader(std::time::Duration::from_secs(5))
            .expect("first leader");
        cluster.pause(first);
        // A replacement must emerge among the remaining two.
        let deadline = crate::clock::monotonic_now() + std::time::Duration::from_secs(5);
        let second = loop {
            assert!(crate::clock::monotonic_now() < deadline, "no failover");
            let found = cluster
                .ids()
                .iter()
                .filter(|id| **id != first)
                .filter_map(|id| cluster.status(*id))
                .find(|s| s.role == Role::Leader);
            if let Some(s) = found {
                break s.id;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        };
        assert_ne!(second, first);
        // The old leader rejoins as a follower.
        cluster.resume(first);
        std::thread::sleep(std::time::Duration::from_millis(300));
        let status = cluster.status(first).expect("status");
        assert_ne!(status.role, Role::Leader, "deposed leader must not lead");
        cluster.shutdown();
    }
}
