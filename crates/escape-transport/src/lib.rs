//! # escape-transport
//!
//! Real-time runtimes for the sans-IO consensus engine: the same
//! [`Node`](escape_core::engine::Node) that the deterministic simulator
//! drives for the paper's figures runs here against wall clocks and real
//! links.
//!
//! * [`runtime`] — the per-node thread loop (inbox + timers → actions) and
//!   the [`Switchboard`](runtime::Switchboard) registry.
//! * [`inproc`] — [`InprocCluster`]: channel-mesh
//!   cluster in one process; supports pause/resume fault injection and a
//!   propose-and-wait client path.
//! * [`tcp`] — [`TcpNode`]: full-mesh TCP with
//!   `escape-wire` framing, plus the group-multiplexed
//!   [`TcpMesh`](tcp::TcpMesh)/[`GroupRoutes`](tcp::GroupRoutes) pieces
//!   `escape-shard` builds its multi-group nodes from.
//! * [`spec`] — protocol/timing presets scaled for loopback latencies.
//!
//! ```no_run
//! use escape_transport::inproc::InprocCluster;
//! use escape_transport::spec::ProtocolSpec;
//!
//! let cluster = InprocCluster::spawn(5, ProtocolSpec::escape_local(), 1);
//! let leader = cluster.wait_for_leader(std::time::Duration::from_secs(3));
//! println!("leader = {leader:?}");
//! cluster.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod clock;
pub mod inproc;
pub mod runtime;
pub mod service;
pub mod spec;
pub mod tcp;

pub use clock::RuntimeClock;
pub use inproc::{ClientError, InprocCluster};
pub use runtime::{NodeInput, NodeStatus, Outbound};
pub use service::{ClientRouter, ClientService, RouteVerdict};
pub use spec::ProtocolSpec;
pub use tcp::{
    loopback_listeners, GroupOutbound, GroupRoutes, SpawnOptions, StorageHook, TcpMesh, TcpNode,
};
