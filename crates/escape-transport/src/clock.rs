//! Wall-clock to logical-time mapping.
//!
//! The engine speaks [`Time`] (microseconds from an epoch); a real-time
//! runtime anchors that epoch at start-up and reads a monotonic clock.

use std::time::Instant;

use escape_core::time::Time;

/// Reads the monotonic clock. This module is the transport's single
/// designated clock source — escape-lint's deterministic-time rule
/// forbids raw `Instant::now()` anywhere else, so every wall-clock read
/// funnels through here and is easy to audit (or swap for a virtual
/// clock) later.
#[must_use]
pub fn monotonic_now() -> Instant {
    Instant::now()
}

/// Maps [`Instant`]s onto the engine's logical timeline.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeClock {
    epoch: Instant,
}

impl RuntimeClock {
    /// Anchors the epoch at "now".
    pub fn start() -> Self {
        RuntimeClock {
            epoch: Instant::now(),
        }
    }

    /// The current logical time.
    pub fn now(&self) -> Time {
        Time::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    /// Converts a logical deadline into a wait from "now", `None` if the
    /// deadline already passed.
    pub fn until(&self, deadline: Time) -> Option<std::time::Duration> {
        let now = self.now();
        if deadline <= now {
            return None;
        }
        Some(std::time::Duration::from_micros(
            (deadline - now).as_micros(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let clock = RuntimeClock::start();
        let a = clock.now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = clock.now();
        assert!(b > a);
    }

    #[test]
    fn until_handles_past_deadlines() {
        let clock = RuntimeClock::start();
        assert_eq!(clock.until(Time::ZERO), None);
        let future = clock.now() + escape_core::time::Duration::from_secs(1);
        let wait = clock.until(future).expect("future deadline");
        assert!(wait <= std::time::Duration::from_secs(1));
        assert!(wait > std::time::Duration::from_millis(900));
    }
}
