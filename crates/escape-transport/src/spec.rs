//! Cluster specification for real-time deployments.

use escape_core::config::EscapeParams;
use escape_core::engine::Options;
use escape_core::policy::{ElectionPolicy, EscapePolicy, RaftPolicy, ZRaftPolicy};
use escape_core::time::Duration;
use escape_core::types::ServerId;

/// Which election protocol a real-time cluster runs, with timings scaled
/// for the deployment (LAN timings differ from the paper's simulated WAN).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolSpec {
    /// Stock Raft, timeouts uniform in `[min, max)`.
    Raft {
        /// Minimum election timeout.
        timeout_min: Duration,
        /// Maximum election timeout (exclusive).
        timeout_max: Duration,
    },
    /// Z-Raft: static server-id priorities.
    ZRaft {
        /// Eq. 1 `baseTime`.
        base_time: Duration,
        /// Eq. 1 `k`.
        spacing: Duration,
    },
    /// ESCAPE: SCA + PPF.
    Escape {
        /// Eq. 1 `baseTime`.
        base_time: Duration,
        /// Eq. 1 `k`.
        spacing: Duration,
    },
}

impl ProtocolSpec {
    /// ESCAPE sized for in-process / loopback latencies: `baseTime` 150 ms,
    /// `k` 50 ms.
    pub fn escape_local() -> Self {
        ProtocolSpec::Escape {
            base_time: Duration::from_millis(150),
            spacing: Duration::from_millis(50),
        }
    }

    /// Raft sized for in-process / loopback latencies: 150–300 ms.
    pub fn raft_local() -> Self {
        ProtocolSpec::Raft {
            timeout_min: Duration::from_millis(150),
            timeout_max: Duration::from_millis(300),
        }
    }

    /// Builds the policy for one node.
    pub fn build_policy(&self, id: ServerId, n: usize, seed: u64) -> Box<dyn ElectionPolicy> {
        match *self {
            ProtocolSpec::Raft {
                timeout_min,
                timeout_max,
            } => Box::new(RaftPolicy::randomized(timeout_min, timeout_max, seed)),
            ProtocolSpec::ZRaft { base_time, spacing } => {
                let params = EscapeParams::builder(n)
                    .base_time(base_time)
                    .spacing(spacing)
                    .build();
                Box::new(ZRaftPolicy::new(id, params))
            }
            ProtocolSpec::Escape { base_time, spacing } => {
                let params = EscapeParams::builder(n)
                    .base_time(base_time)
                    .spacing(spacing)
                    .build();
                Box::new(EscapePolicy::new(id, params))
            }
        }
    }

    /// Engine options matched to local timings (50 ms heartbeats).
    pub fn local_options() -> Options {
        Options {
            heartbeat_interval: Duration::from_millis(50),
            ..Options::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_specs_have_sane_ratios() {
        // Heartbeat must sit well below the shortest election timeout.
        let hb = ProtocolSpec::local_options().heartbeat_interval;
        match ProtocolSpec::escape_local() {
            ProtocolSpec::Escape { base_time, .. } => assert!(hb * 3 <= base_time),
            _ => unreachable!(),
        }
        match ProtocolSpec::raft_local() {
            ProtocolSpec::Raft { timeout_min, .. } => assert!(hb * 3 <= timeout_min),
            _ => unreachable!(),
        }
    }

    #[test]
    fn builds_every_policy_kind() {
        let id = ServerId::new(2);
        assert_eq!(
            ProtocolSpec::raft_local().build_policy(id, 3, 1).name(),
            "raft"
        );
        assert_eq!(
            ProtocolSpec::escape_local().build_policy(id, 3, 1).name(),
            "escape"
        );
        let z = ProtocolSpec::ZRaft {
            base_time: Duration::from_millis(150),
            spacing: Duration::from_millis(50),
        };
        assert_eq!(z.build_policy(id, 3, 1).name(), "zraft");
    }
}
