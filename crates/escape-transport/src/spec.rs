//! Cluster specification for real-time deployments.

use escape_core::config::EscapeParams;
use escape_core::engine::Options;
use escape_core::policy::{ElectionPolicy, EscapePolicy, RaftPolicy, ZRaftPolicy};
use escape_core::time::Duration;
use escape_core::types::{GroupId, Priority, ServerId};

/// Which election protocol a real-time cluster runs, with timings scaled
/// for the deployment (LAN timings differ from the paper's simulated WAN).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolSpec {
    /// Stock Raft, timeouts uniform in `[min, max)`.
    Raft {
        /// Minimum election timeout.
        timeout_min: Duration,
        /// Maximum election timeout (exclusive).
        timeout_max: Duration,
    },
    /// Z-Raft: static server-id priorities.
    ZRaft {
        /// Eq. 1 `baseTime`.
        base_time: Duration,
        /// Eq. 1 `k`.
        spacing: Duration,
    },
    /// ESCAPE: SCA + PPF.
    Escape {
        /// Eq. 1 `baseTime`.
        base_time: Duration,
        /// Eq. 1 `k`.
        spacing: Duration,
    },
}

impl ProtocolSpec {
    /// ESCAPE sized for in-process / loopback latencies: `baseTime` 150 ms,
    /// `k` 50 ms.
    pub fn escape_local() -> Self {
        ProtocolSpec::Escape {
            base_time: Duration::from_millis(150),
            spacing: Duration::from_millis(50),
        }
    }

    /// Raft sized for in-process / loopback latencies: 150–300 ms.
    pub fn raft_local() -> Self {
        ProtocolSpec::Raft {
            timeout_min: Duration::from_millis(150),
            timeout_max: Duration::from_millis(300),
        }
    }

    /// Builds the policy for one node.
    pub fn build_policy(&self, id: ServerId, n: usize, seed: u64) -> Box<dyn ElectionPolicy> {
        match *self {
            ProtocolSpec::Raft {
                timeout_min,
                timeout_max,
            } => Box::new(RaftPolicy::randomized(timeout_min, timeout_max, seed)),
            ProtocolSpec::ZRaft { base_time, spacing } => {
                let params = EscapeParams::builder(n)
                    .base_time(base_time)
                    .spacing(spacing)
                    .build();
                Box::new(ZRaftPolicy::new(id, params))
            }
            ProtocolSpec::Escape { base_time, spacing } => {
                let params = EscapeParams::builder(n)
                    .base_time(base_time)
                    .spacing(spacing)
                    .build();
                Box::new(EscapePolicy::new(id, params))
            }
        }
    }

    /// Builds the policy for one node of one consensus **group** in a
    /// sharded deployment.
    ///
    /// Same as [`ProtocolSpec::build_policy`], except that leadership is
    /// spread across the cluster instead of stacked on one server: for
    /// ESCAPE the SCA boot priorities are rotated by the group id (group
    /// `g` hands server `s` priority `((s−1+g) mod n)+1` — still a
    /// permutation, so §IV-A1 holds per group, but each group's
    /// highest-priority server differs), and for the randomized policies
    /// the group id is folded into the seed.
    pub fn build_group_policy(
        &self,
        id: ServerId,
        n: usize,
        seed: u64,
        group: GroupId,
    ) -> Box<dyn ElectionPolicy> {
        // SplitMix64-style odd multiplier decorrelates per-group seeds.
        let group_seed =
            seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(group.get() as u64 + 1);
        match *self {
            ProtocolSpec::Escape { base_time, spacing } => {
                let params = EscapeParams::builder(n)
                    .base_time(base_time)
                    .spacing(spacing)
                    .build();
                let rotated =
                    Priority::new(((id.index() + group.index()) % n) as u64 + 1);
                Box::new(EscapePolicy::new(id, params).with_boot_priority(rotated))
            }
            _ => self.build_policy(id, n, group_seed),
        }
    }

    /// Engine options matched to local timings: 50 ms heartbeats and a
    /// 100 ms leader lease. The lease's vote fence is lease × 5/4 =
    /// 125 ms of required silence — under the 150 ms floor every local
    /// spec gives its shortest election timeout, so a legitimate failover
    /// (a voter whose timer actually expired) is never delayed. The
    /// engine additionally caps the lease at the policy's own bound.
    pub fn local_options() -> Options {
        Options {
            heartbeat_interval: Duration::from_millis(50),
            lease_duration: Some(Duration::from_millis(100)),
            ..Options::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_specs_have_sane_ratios() {
        // Heartbeat must sit well below the shortest election timeout,
        // and the lease fence (lease × 5/4) strictly below it too, so
        // the fence never outlives a legitimately expired election timer.
        let opts = ProtocolSpec::local_options();
        let hb = opts.heartbeat_interval;
        let lease = opts.lease_duration.expect("local options enable leases");
        let fence = Duration::from_micros(lease.as_micros() * 5 / 4);
        match ProtocolSpec::escape_local() {
            ProtocolSpec::Escape { base_time, .. } => {
                assert!(hb * 3 <= base_time);
                assert!(fence < base_time);
            }
            _ => unreachable!(),
        }
        match ProtocolSpec::raft_local() {
            ProtocolSpec::Raft { timeout_min, .. } => {
                assert!(hb * 3 <= timeout_min);
                assert!(fence < timeout_min);
            }
            _ => unreachable!(),
        }
        // The lease must survive losing a heartbeat or two: each round
        // extends it, so it only lapses after lease/heartbeat silent
        // rounds.
        assert!(lease >= hb * 2, "lease too short to span heartbeat jitter");
    }

    #[test]
    fn builds_every_policy_kind() {
        let id = ServerId::new(2);
        assert_eq!(
            ProtocolSpec::raft_local().build_policy(id, 3, 1).name(),
            "raft"
        );
        assert_eq!(
            ProtocolSpec::escape_local().build_policy(id, 3, 1).name(),
            "escape"
        );
        let z = ProtocolSpec::ZRaft {
            base_time: Duration::from_millis(150),
            spacing: Duration::from_millis(50),
        };
        assert_eq!(z.build_policy(id, 3, 1).name(), "zraft");
    }

    #[test]
    fn group_policies_rotate_escape_boot_priorities() {
        let n = 4usize;
        // Within one group: boot priorities form a permutation of 1..=n.
        for g in 0..n as u32 {
            let group = GroupId::new(g);
            let mut prios: Vec<u64> = (1..=n as u32)
                .map(|s| {
                    ProtocolSpec::escape_local()
                        .build_group_policy(ServerId::new(s), n, 7, group)
                        .term_increment()
                })
                .collect();
            prios.sort_unstable();
            assert_eq!(prios, vec![1, 2, 3, 4], "group {group} must keep a permutation");
        }
        // Across groups: the top-priority (initial-leader) server differs.
        let top_server = |group: GroupId| -> u32 {
            (1..=n as u32)
                .max_by_key(|s| {
                    ProtocolSpec::escape_local()
                        .build_group_policy(ServerId::new(*s), n, 7, group)
                        .term_increment()
                })
                .unwrap()
        };
        let tops: std::collections::HashSet<u32> =
            (0..n as u32).map(|g| top_server(GroupId::new(g))).collect();
        assert_eq!(tops.len(), n, "each group must favor a different server");
    }
}
