//! Election measurement.
//!
//! The paper's metric (§VI-B): "The leader election time is recorded
//! including the detection of the leader crash and the election of a new
//! leader." Fig. 10 additionally splits the two periods: "The detection
//! period is recorded between when a leader crashes and a candidate
//! appears. The election period is recorded between when a candidate starts
//! an election campaign and a new leader is elected."
//!
//! [`measure_election`] extracts exactly those quantities from a cluster's
//! [`ObservedEvent`] log.

use std::collections::BTreeSet;

use escape_core::time::{Duration, Time};
use escape_core::types::{ServerId, Term};

use crate::cluster::ObservedEvent;

/// The measured anatomy of one leader election.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ElectionMeasurement {
    /// When the old leader crashed.
    pub crash_at: Time,
    /// When the first candidate appeared (end of the detection period).
    pub first_candidate_at: Time,
    /// When the new leader collected its quorum.
    pub leader_at: Time,
    /// The winner.
    pub winner: ServerId,
    /// The winner's leadership term.
    pub winning_term: Term,
    /// Campaigns started between crash and resolution (1 = the ideal,
    /// competition-free case).
    pub campaigns: u32,
    /// Distinct servers that campaigned.
    pub distinct_candidates: u32,
    /// Election "phases": campaign waves separated by quiet gaps — for
    /// Raft each wave is one shared term's worth of competing candidates.
    pub phases: u32,
    /// Phases in which two or more candidates campaigned concurrently
    /// (the paper's "phases with competing candidates").
    pub competing_phases: u32,
}

impl ElectionMeasurement {
    /// Crash → first candidate (the failure-detection period).
    pub fn detection(&self) -> Duration {
        self.first_candidate_at.saturating_since(self.crash_at)
    }

    /// First candidate → leader (the vote-collection period, including any
    /// split-vote livelock).
    pub fn election(&self) -> Duration {
        self.leader_at.saturating_since(self.first_candidate_at)
    }

    /// Crash → leader: the paper's headline "leader election time".
    pub fn total(&self) -> Duration {
        self.leader_at.saturating_since(self.crash_at)
    }
}

/// Groups candidate timestamps into waves: two campaigns belong to the same
/// phase when they start within `window` of each other.
fn count_phases(mut starts: Vec<Time>, window: Duration) -> (u32, u32) {
    starts.sort_unstable();
    let mut phases = 0u32;
    let mut competing = 0u32;
    let mut i = 0;
    while i < starts.len() {
        let wave_start = starts[i];
        let mut members = 0u32;
        while i < starts.len() && starts[i].saturating_since(wave_start) <= window {
            members += 1;
            i += 1;
        }
        phases += 1;
        if members >= 2 {
            competing += 1;
        }
    }
    (phases, competing)
}

/// Measures the election triggered by the crash at `crash_at`.
///
/// Scans `events` for the first campaign after the crash and the first
/// leadership claim after that; campaigns are grouped into phases with a
/// concurrency `window` (pass roughly the maximum network latency: campaigns
/// closer than one one-way delay genuinely compete for the same votes).
///
/// Returns `None` if no leader emerged after the crash (measurement horizon
/// too short).
pub fn measure_election(
    events: &[ObservedEvent],
    crash_at: Time,
    window: Duration,
) -> Option<ElectionMeasurement> {
    let mut first_candidate_at: Option<Time> = None;
    let mut campaign_starts: Vec<Time> = Vec::new();
    let mut candidates: BTreeSet<ServerId> = BTreeSet::new();
    let mut campaigns = 0u32;

    for event in events {
        match event {
            ObservedEvent::Candidate { at, node, .. } if *at >= crash_at => {
                first_candidate_at.get_or_insert(*at);
                campaigns += 1;
                candidates.insert(*node);
                campaign_starts.push(*at);
            }
            ObservedEvent::Leader { at, node, term } if *at >= crash_at => {
                // A leadership claim with no post-crash campaign behind it
                // is leftover from a pre-crash election (e.g. a leader
                // crashed at the instant it won); the recovery election is
                // still ahead of us.
                let Some(first) = first_candidate_at else {
                    continue;
                };
                let (phases, competing_phases) = count_phases(campaign_starts, window);
                return Some(ElectionMeasurement {
                    crash_at,
                    first_candidate_at: first,
                    leader_at: *at,
                    winner: *node,
                    winning_term: *term,
                    campaigns,
                    distinct_candidates: candidates.len() as u32,
                    phases,
                    competing_phases,
                });
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use escape_core::types::LogIndex;

    fn ms(v: u64) -> Time {
        Time::from_millis(v)
    }

    fn cand(at: u64, node: u32, term: u64) -> ObservedEvent {
        ObservedEvent::Candidate {
            at: ms(at),
            node: ServerId::new(node),
            term: Term::new(term),
        }
    }

    fn lead(at: u64, node: u32, term: u64) -> ObservedEvent {
        ObservedEvent::Leader {
            at: ms(at),
            node: ServerId::new(node),
            term: Term::new(term),
        }
    }

    const WINDOW: Duration = Duration::from_millis(200);

    #[test]
    fn clean_single_campaign() {
        let events = vec![
            cand(100, 2, 1), // pre-crash noise
            lead(150, 2, 1),
            ObservedEvent::Crash {
                at: ms(1000),
                node: ServerId::new(2),
            },
            cand(2600, 3, 2),
            lead(2900, 3, 2),
        ];
        let m = measure_election(&events, ms(1000), WINDOW).unwrap();
        assert_eq!(m.detection(), Duration::from_millis(1600));
        assert_eq!(m.election(), Duration::from_millis(300));
        assert_eq!(m.total(), Duration::from_millis(1900));
        assert_eq!(m.winner, ServerId::new(3));
        assert_eq!(m.campaigns, 1);
        assert_eq!(m.phases, 1);
        assert_eq!(m.competing_phases, 0);
    }

    #[test]
    fn split_vote_counts_phases() {
        // Fig. 2's anatomy: S3 and S4 collide (phase 1, competing), then S3
        // wins alone on its second timeout (phase 2).
        let events = vec![
            cand(2500, 3, 2),
            cand(2550, 4, 2),
            cand(4100, 3, 3),
            lead(4400, 3, 3),
        ];
        let m = measure_election(&events, ms(1000), WINDOW).unwrap();
        assert_eq!(m.campaigns, 3);
        assert_eq!(m.distinct_candidates, 2);
        assert_eq!(m.phases, 2);
        assert_eq!(m.competing_phases, 1);
        assert_eq!(m.winner, ServerId::new(3));
    }

    #[test]
    fn concurrent_escape_campaigns_one_phase() {
        // Fig. 6: three simultaneous campaigns in different terms, resolved
        // in one phase.
        let events = vec![
            cand(2600, 2, 13),
            cand(2610, 3, 15),
            cand(2620, 4, 12),
            lead(2950, 3, 15),
        ];
        let m = measure_election(&events, ms(1000), WINDOW).unwrap();
        assert_eq!(m.phases, 1);
        assert_eq!(m.competing_phases, 1);
        assert_eq!(m.distinct_candidates, 3);
        assert_eq!(m.winning_term, Term::new(15));
    }

    #[test]
    fn no_leader_yields_none() {
        let events = vec![cand(2600, 3, 2)];
        assert!(measure_election(&events, ms(1000), WINDOW).is_none());
    }

    #[test]
    fn leader_event_at_the_crash_instant_is_skipped() {
        // The crashed leader's own win can share the crash timestamp; the
        // measurement must wait for the *recovery* election instead of
        // aborting.
        let events = vec![
            lead(1000, 2, 5), // wins and crashes in the same instant
            cand(2600, 3, 7),
            lead(2900, 3, 7),
        ];
        let m = measure_election(&events, ms(1000), WINDOW).unwrap();
        assert_eq!(m.winner, ServerId::new(3));
        assert_eq!(m.total(), Duration::from_millis(1900));
    }

    #[test]
    fn pre_crash_events_are_ignored() {
        let events = vec![
            cand(500, 9, 1),
            lead(800, 9, 1),
            cand(2600, 3, 2),
            lead(2900, 3, 2),
        ];
        let m = measure_election(&events, ms(1000), WINDOW).unwrap();
        assert_eq!(m.winner, ServerId::new(3));
        assert_eq!(m.campaigns, 1);
    }

    #[test]
    fn commit_events_do_not_confuse_measurement() {
        let events = vec![
            ObservedEvent::Commit {
                at: ms(1100),
                node: ServerId::new(1),
                index: LogIndex::new(5),
            },
            cand(2600, 3, 2),
            lead(2900, 3, 2),
        ];
        let m = measure_election(&events, ms(1000), WINDOW).unwrap();
        assert_eq!(m.total(), Duration::from_millis(1900));
    }

    #[test]
    fn phase_window_groups_correctly() {
        let (phases, competing) = count_phases(
            vec![ms(100), ms(150), ms(180), ms(900), ms(2000), ms(2100)],
            WINDOW,
        );
        assert_eq!(phases, 3);
        assert_eq!(competing, 2); // {100,150,180} and {2000,2100}
    }
}
