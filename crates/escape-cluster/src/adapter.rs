//! Glue between the engine's typed timer tokens and the simulator's opaque
//! `u64` tokens.
//!
//! The engine cancels timers by bumping an epoch; the simulator never
//! cancels anything. Encoding `(kind, epoch)` into the opaque token lets the
//! engine's epoch check silently discard superseded expirations.

use escape_core::engine::{TimerKind, TimerToken};

/// Packs a [`TimerToken`] into the simulator's opaque `u64`.
pub fn encode_timer(token: TimerToken) -> u64 {
    let kind_bits = match token.kind {
        TimerKind::Election => 0,
        TimerKind::Heartbeat => 1,
        TimerKind::VoteRetry => 2,
    };
    (token.epoch << 2) | kind_bits
}

/// Unpacks a simulator token back into a [`TimerToken`].
///
/// # Panics
///
/// Panics on an unknown kind encoding (a harness bug, not an input error).
pub fn decode_timer(raw: u64) -> TimerToken {
    let kind = match raw & 0b11 {
        0 => TimerKind::Election,
        1 => TimerKind::Heartbeat,
        2 => TimerKind::VoteRetry,
        other => unreachable!("unknown timer kind encoding {other}"),
    };
    TimerToken {
        kind,
        epoch: raw >> 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_both_kinds() {
        for epoch in [0u64, 1, 2, 1_000_000, u64::MAX >> 2] {
            for kind in [
                TimerKind::Election,
                TimerKind::Heartbeat,
                TimerKind::VoteRetry,
            ] {
                let t = TimerToken { kind, epoch };
                assert_eq!(decode_timer(encode_timer(t)), t);
            }
        }
    }

    #[test]
    fn encodings_are_distinct() {
        let a = encode_timer(TimerToken {
            kind: TimerKind::Election,
            epoch: 5,
        });
        let b = encode_timer(TimerToken {
            kind: TimerKind::Heartbeat,
            epoch: 5,
        });
        assert_ne!(a, b);
    }
}
