//! Deterministic scenario scripts.
//!
//! Fig. 10 evaluates elections that resolve "in zero, one, two, and three
//! phases with competing candidates" — the authors *configured* timeouts to
//! produce each class. This module builds the equivalent scripted
//! protocols:
//!
//! * **Raft, class `m`** ([`competing_phases_protocol`]) — every server's
//!   election timeout is pinned to a common wave cadence, so after the
//!   leader disappears *all* followers' timers expire together. With the
//!   whole cluster campaigning, nobody has followers left to vote for it:
//!   each wave is a guaranteed split (a deterministic realization of the
//!   livelock §VI-C describes). After `m` such waves, one designated server
//!   keeps the cadence while everyone else stands down for a long beat —
//!   the designated server campaigns alone and wins.
//! * **ESCAPE, class `m ≥ 1`** — the analogous stress is `k = 0` in Eq. 1:
//!   every configuration shares the `baseTime` timeout, so every wave is a
//!   full collision. Priorities still differ, so the concurrent campaigns
//!   land on different term surfaces (Fig. 7) and the *first* wave resolves
//!   the election regardless of `m` — precisely the claim Fig. 10 makes.
//!
//! Wave position is tracked by counting campaigns: the engine calls
//! [`ElectionPolicy::term_increment`] exactly once per campaign start, so a
//! policy can count its own waves without peeking at engine internals.

use std::cell::Cell;
use std::sync::Arc;

use escape_core::config::EscapeParams;
use escape_core::policy::{ElectionPolicy, EscapePolicy, RaftPolicy, ScriptedTimeouts};
use escape_core::time::Duration;
use escape_core::types::ServerId;

use crate::cluster::Protocol;

/// The wave cadence used by the scripted Raft schedules: the minimum of the
/// paper's recommended 1500–3000 ms timeout range, i.e. the earliest a
/// repeat campaign can start.
pub const WAVE: Duration = Duration::from_millis(1500);

/// How long stood-down servers wait once the designated winner breaks the
/// tie — comfortably longer than a detect-campaign-win round trip at the
/// paper's latency.
pub const STAND_DOWN: Duration = Duration::from_millis(6000);

/// Stock-Raft election behaviour with a wave-scripted timeout: collide for
/// `forced_waves` campaigns, then either keep the cadence (the designated
/// winner) or stand down (everyone else).
#[derive(Debug)]
struct WaveScriptPolicy {
    forced_waves: u32,
    is_winner: bool,
    campaigns: Cell<u32>,
}

impl ElectionPolicy for WaveScriptPolicy {
    fn name(&self) -> &'static str {
        "raft"
    }

    fn election_timeout(&mut self) -> Duration {
        // Everyone keeps the wave cadence through the forced collisions;
        // afterwards only the designated winner keeps it.
        if self.campaigns.get() < self.forced_waves || self.is_winner {
            WAVE
        } else {
            STAND_DOWN
        }
    }

    fn term_increment(&self) -> u64 {
        // Called exactly once per campaign start: count the wave.
        self.campaigns.set(self.campaigns.get() + 1);
        1
    }
}

/// Builds the protocol for a Fig. 10 class (`competing_phases` = 0..=3) for
/// the given base protocol name (`"raft"` or `"escape"`).
///
/// Clusters built from these protocols are measured **from boot**: a fresh
/// leaderless cluster (timers armed, no heartbeats yet) is behaviourally
/// identical to the instant after a leader crash, and boot makes the wave
/// collisions exact because every timer arms at `t = 0`.
///
/// The designated `winner` (experiments use S2) breaks the tie after the
/// forced waves.
///
/// # Panics
///
/// Panics on an unknown protocol name.
pub fn competing_phases_protocol(
    protocol: &str,
    competing_phases: u32,
    winner: ServerId,
) -> Protocol {
    match protocol {
        "raft" => Protocol::Custom(Arc::new(move |id: ServerId, _n, _seed| {
            Box::new(WaveScriptPolicy {
                forced_waves: competing_phases,
                is_winner: id == winner,
                campaigns: Cell::new(0),
            })
        })),
        "escape" => {
            if competing_phases == 0 {
                // No contention: the paper's normal spacing.
                Protocol::escape_paper_default()
            } else {
                // Maximal contention: k = 0 collapses every timeout onto
                // baseTime; every wave is a full collision.
                Protocol::Custom(Arc::new(|id: ServerId, n: usize, _seed| {
                    let params = EscapeParams::builder(n)
                        .base_time_ms(1500)
                        .spacing_ms(0)
                        .build();
                    Box::new(EscapePolicy::new(id, params))
                }))
            }
        }
        other => panic!("unknown protocol {other:?} for the Fig. 10 scenario"),
    }
}

/// The Fig. 2 case study: a 5-server Raft cluster where S3 and S4 collide
/// and split the vote, then S3 wins on its second timeout.
///
/// S1 plays the crashed leader (its timer never fires); S2 and S5 are the
/// passive voters. The schedule is consumed as timers re-arm, and with no
/// heartbeats flowing in a leaderless boot, entry 0 is the first campaign
/// and entry 1 the retry.
pub fn fig2_split_vote_protocol() -> Protocol {
    Protocol::Custom(Arc::new(|id: ServerId, _n: usize, _seed: u64| {
        let schedule = match id.get() {
            3 => vec![
                Duration::from_millis(1500),
                Duration::from_millis(1200),
                Duration::from_millis(60_000),
            ],
            4 => vec![Duration::from_millis(1500), Duration::from_millis(60_000)],
            _ => vec![Duration::from_millis(60_000)],
        };
        Box::new(RaftPolicy::with_source(Box::new(ScriptedTimeouts::new(
            schedule,
        ))))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, SimCluster};
    use crate::observer::measure_election;
    use escape_core::time::Time;
    use escape_core::types::{Role, Term};
    use escape_simnet::latency::LatencyModel;

    fn constant_latency(cfg: &mut ClusterConfig) {
        // Constant latency makes the scripted collisions exact.
        cfg.latency = LatencyModel::Constant(Duration::from_millis(150));
    }

    #[test]
    fn fig2_script_produces_a_split_then_resolution() {
        let mut cfg = ClusterConfig::paper_network(5, fig2_split_vote_protocol(), 7);
        // Asymmetric (geo) latency recreates Fig. 2's vote split exactly:
        // S2 hears S3 first, S5 hears S4 first.
        cfg.latency = LatencyModel::Geo {
            group_of: vec![0, 0, 0, 1, 1],
            intra: (Duration::from_millis(100), Duration::from_millis(100)),
            inter: (Duration::from_millis(200), Duration::from_millis(200)),
        };
        let mut cluster = SimCluster::new(cfg);
        // S1 is the crashed leader of t(1) — "afterwards there was no
        // communication between S1 and the other servers".
        cluster.crash(ServerId::new(1));

        // Both candidates fire at 1500 ms; each votes for itself, S2 votes
        // for S3, S5 votes for S4 — nobody reaches three votes.
        cluster.run_until(Time::from_millis(2400));
        for id in [3u32, 4] {
            assert_eq!(
                cluster.node(ServerId::new(id)).role(),
                Role::Candidate,
                "S{id} must be campaigning"
            );
        }
        assert!(cluster.current_leader().is_none(), "term 1 must split");

        // ...until S3's second timeout resolves it in term 2 (point D-E).
        let winner = cluster
            .run_until_new_leader(Term::ZERO, Time::from_millis(6000))
            .expect("S3 resolves the split");
        assert_eq!(winner, ServerId::new(3));
        assert_eq!(cluster.node(winner).current_term(), Term::new(2));
        assert!(cluster.safety().is_safe());
    }

    #[test]
    fn raft_class_zero_elects_in_one_wave() {
        let mut cfg = ClusterConfig::paper_network(
            8,
            competing_phases_protocol("raft", 0, ServerId::new(2)),
            3,
        );
        constant_latency(&mut cfg);
        let mut cluster = SimCluster::new(cfg);
        let winner = cluster
            .run_until_new_leader(Term::ZERO, Time::from_millis(10_000))
            .expect("class-0 script elects the winner in wave 1");
        assert_eq!(winner, ServerId::new(2));
        let m = measure_election(cluster.events(), Time::ZERO, Duration::from_millis(200))
            .unwrap();
        assert_eq!(m.competing_phases, 0);
        assert_eq!(m.phases, 1);
    }

    #[test]
    fn raft_class_two_costs_two_extra_waves() {
        let mut cfg = ClusterConfig::paper_network(
            8,
            competing_phases_protocol("raft", 2, ServerId::new(2)),
            3,
        );
        constant_latency(&mut cfg);
        let mut cluster = SimCluster::new(cfg);
        let winner = cluster
            .run_until_new_leader(Term::ZERO, Time::from_millis(20_000))
            .expect("winner after two forced waves");
        assert_eq!(winner, ServerId::new(2));
        let m = measure_election(cluster.events(), Time::ZERO, Duration::from_millis(200))
            .unwrap();
        assert_eq!(m.competing_phases, 2, "exactly two split waves");
        assert_eq!(m.phases, 3);
        // The livelock costs ≈ phases × wave (§VI-C).
        assert!(m.total() >= Duration::from_millis(4500));
        assert!(m.total() <= Duration::from_millis(5500));
        assert!(cluster.safety().is_safe());
    }

    #[test]
    fn escape_under_full_contention_resolves_in_first_wave() {
        let mut cfg = ClusterConfig::paper_network(
            8,
            competing_phases_protocol("escape", 3, ServerId::new(2)),
            3,
        );
        constant_latency(&mut cfg);
        let mut cluster = SimCluster::new(cfg);
        let winner = cluster
            .run_until_new_leader(Term::ZERO, Time::from_millis(10_000))
            .expect("highest-priority candidate wins wave 1");
        // All eight collide; the top term surface belongs to S8.
        assert_eq!(winner, ServerId::new(8));
        let m = measure_election(cluster.events(), Time::ZERO, Duration::from_millis(200))
            .unwrap();
        // One phase despite 8 concurrent candidates — Fig. 10's claim.
        assert_eq!(m.phases, 1);
        assert_eq!(m.competing_phases, 1);
        assert!(
            m.total() <= Duration::from_millis(2100),
            "ESCAPE stays within the paper's 2000 ms envelope (got {})",
            m.total()
        );
        assert!(cluster.safety().is_safe());
    }

    #[test]
    #[should_panic(expected = "unknown protocol")]
    fn unknown_protocol_is_rejected() {
        let _ = competing_phases_protocol("paxos", 1, ServerId::new(1));
    }
}
