//! Seed-sweeping fault-campaign explorer (the nightly CI entry point).
//!
//! ```text
//! cargo run --release -p escape-cluster --bin campaign -- [options]
//!   --scenario <name|all>   scenario to sweep (default all)
//!   --seeds <N>             seeds per scenario (default 50)
//!   --start <S>             first seed (default 1)
//!   --seed <S>              replay exactly one seed and print the verdict
//!   --budget-secs <T>       stop sweeping after T wall-clock seconds
//!   --emit-corpus           print passing trials as corpus lines
//!   --list                  list scenario names and exit
//! ```
//!
//! Exit status is non-zero when any trial failed; every failure prints a
//! shrunken, self-contained reproducer whose `scenario seed` line can be
//! appended to `crates/escape-cluster/corpus/campaign.txt` once the bug
//! is fixed, locking the regression in as a tier-1 test.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use escape_cluster::campaign::{
    run_trial, scenario_plan, sweep, TrialOptions, SCENARIO_NAMES,
};

struct Args {
    scenario: String,
    seeds: u64,
    start: u64,
    single_seed: Option<u64>,
    budget: Option<Duration>,
    emit_corpus: bool,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scenario: "all".to_string(),
        seeds: 50,
        start: 1,
        single_seed: None,
        budget: None,
        emit_corpus: false,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--scenario" => args.scenario = value("--scenario")?,
            "--seeds" => {
                args.seeds = value("--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?
            }
            "--start" => {
                args.start = value("--start")?
                    .parse()
                    .map_err(|e| format!("--start: {e}"))?
            }
            "--seed" => {
                args.single_seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                )
            }
            "--budget-secs" => {
                args.budget = Some(Duration::from_secs(
                    value("--budget-secs")?
                        .parse()
                        .map_err(|e| format!("--budget-secs: {e}"))?,
                ))
            }
            "--emit-corpus" => args.emit_corpus = true,
            "--list" => args.list = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(error) => {
            eprintln!("campaign: {error}");
            return ExitCode::FAILURE;
        }
    };
    if args.list {
        for name in SCENARIO_NAMES {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }
    let scenarios: Vec<&str> = if args.scenario == "all" {
        SCENARIO_NAMES.to_vec()
    } else if SCENARIO_NAMES.contains(&args.scenario.as_str()) {
        vec![SCENARIO_NAMES
            .iter()
            .find(|n| **n == args.scenario)
            .copied()
            .unwrap_or("baseline")]
    } else {
        eprintln!(
            "campaign: unknown scenario `{}` (try --list)",
            args.scenario
        );
        return ExitCode::FAILURE;
    };
    let opts = TrialOptions::default();

    // Single-seed replay mode: one trial, full verdict, no shrinking.
    if let Some(seed) = args.single_seed {
        let mut failed = false;
        for name in &scenarios {
            let plan = scenario_plan(name).expect("names come from SCENARIO_NAMES");
            let outcome = run_trial(&plan, seed, &opts);
            if outcome.passed() {
                println!("{name} seed {seed}: ok");
            } else {
                failed = true;
                println!("{name} seed {seed}: FAILED");
                for failure in &outcome.failures {
                    println!("  - {failure}");
                }
            }
        }
        return if failed {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    // lint:allow(time): the sweep budget is real wall-clock time on purpose
    let started = Instant::now();
    let mut trials = 0u64;
    let mut failures = 0u64;
    let mut out_of_budget = false;
    'scenarios: for name in &scenarios {
        let plan = scenario_plan(name).expect("names come from SCENARIO_NAMES");
        for seed in args.start..args.start + args.seeds {
            if let Some(budget) = args.budget {
                if started.elapsed() > budget {
                    out_of_budget = true;
                    break 'scenarios;
                }
            }
            let report = sweep(name, &plan, [seed], &opts);
            trials += report.trials;
            if report.clean() {
                if args.emit_corpus {
                    println!("{name} {seed}");
                }
            } else {
                failures += report.failures.len() as u64;
                for repro in &report.failures {
                    eprintln!("{repro}");
                }
            }
        }
    }
    eprintln!(
        "campaign: {trials} trials, {failures} failures{}",
        if out_of_budget {
            " (budget exhausted)"
        } else {
            ""
        }
    );
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
