//! Figure 9: leader-election time at increasing scales.
//!
//! §VI-B: clusters of 8, 16, 32, 64 and 128 servers; Raft with 1500–3000 ms
//! timeouts, ESCAPE with `baseTime = 1500 ms`, `k = 500 ms`; 1000 runs of
//! repeated leader crashes per point. ESCAPE completes every election
//! within ~2000 ms with no split votes; Raft's distribution grows a heavy
//! tail as the scale (and hence the candidate-collision probability) rises.

use crate::cluster::{ClusterConfig, Protocol};
use crate::stats::Summary;
use crate::trial::{run_trials, TrialConfig};

/// The paper's evaluation scales (§VI-B).
pub const PAPER_SCALES: [usize; 5] = [8, 16, 32, 64, 128];

/// One sweep point: a protocol at a scale.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    /// `"raft"` or `"escape"`.
    pub protocol: &'static str,
    /// Cluster size.
    pub scale: usize,
    /// Total leader-election times.
    pub total: Summary,
    /// Detection periods.
    pub detection: Summary,
    /// Election periods.
    pub election: Summary,
    /// Fraction of runs with at least one competing-candidate phase.
    pub split_vote_rate: f64,
    /// Mean campaigns per election (1.0 = always a single campaign).
    pub mean_campaigns: f64,
}

fn protocol_by_name(name: &str) -> Protocol {
    match name {
        "raft" => Protocol::raft_paper_default(),
        "zraft" => Protocol::zraft_paper_default(),
        "escape" => Protocol::escape_paper_default(),
        other => panic!("unknown protocol {other:?}"),
    }
}

fn static_name(name: &str) -> &'static str {
    match name {
        "raft" => "raft",
        "zraft" => "zraft",
        "escape" => "escape",
        other => panic!("unknown protocol {other:?}"),
    }
}

/// Runs the Fig. 9 sweep for the given protocols and scales.
///
/// # Panics
///
/// Panics on unknown protocol names (accepted: `"raft"`, `"zraft"`,
/// `"escape"`).
pub fn run_scale_sweep(
    protocols: &[&str],
    scales: &[usize],
    runs: usize,
    base_seed: u64,
) -> Vec<ScalePoint> {
    let mut out = Vec::new();
    for (pi, protocol_name) in protocols.iter().enumerate() {
        for (si, &scale) in scales.iter().enumerate() {
            let cluster = ClusterConfig::paper_network(
                scale,
                protocol_by_name(protocol_name),
                base_seed,
            );
            let template = TrialConfig::election_only(cluster);
            let seed = base_seed
                .wrapping_add((pi as u64) << 48)
                .wrapping_add((si as u64) << 40);
            let measurements = run_trials(&template, seed, runs);
            let splits = measurements
                .iter()
                .filter(|m| m.competing_phases > 0)
                .count();
            let denom = measurements.len().max(1) as f64;
            out.push(ScalePoint {
                protocol: static_name(protocol_name),
                scale,
                total: Summary::new(measurements.iter().map(|m| m.total()).collect()),
                detection: Summary::new(measurements.iter().map(|m| m.detection()).collect()),
                election: Summary::new(measurements.iter().map(|m| m.election()).collect()),
                split_vote_rate: splits as f64 / denom,
                mean_campaigns: measurements.iter().map(|m| m.campaigns as f64).sum::<f64>()
                    / denom,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use escape_core::time::Duration;

    #[test]
    fn escape_beats_raft_at_scale_16() {
        let points = run_scale_sweep(&["raft", "escape"], &[16], 20, 11);
        let raft = points.iter().find(|p| p.protocol == "raft").unwrap();
        let escape = points.iter().find(|p| p.protocol == "escape").unwrap();
        assert!(
            escape.total.mean() < raft.total.mean(),
            "escape {} should beat raft {}",
            escape.total.mean(),
            raft.total.mean()
        );
        // §VI-B: all ESCAPE elections complete within ~2000 ms.
        assert!(escape.total.max() <= Duration::from_millis(2300));
        assert_eq!(escape.split_vote_rate, 0.0, "no split votes under ESCAPE");
    }

    #[test]
    fn results_cover_the_grid() {
        let points = run_scale_sweep(&["escape"], &[4, 8], 5, 3);
        assert_eq!(points.len(), 2);
        assert!(points.iter().all(|p| p.total.len() == 5));
    }
}
