//! Figure 11: leader election under message loss.
//!
//! §VI-D: clusters of 10, 50 and 100 servers; loss rates Δ ∈ {0, 10, 20,
//! 30, 40} % where each broadcast omits `Δ·n` random receivers; protocols
//! Raft, Z-Raft (static ZooKeeper-style priorities) and ESCAPE. A client
//! workload runs before the crash so that, under loss, follower logs
//! actually diverge — that divergence is what turns stale high-priority
//! servers into unqualified candidates and separates Z-Raft from ESCAPE.

use escape_simnet::loss::LossModel;

use crate::cluster::{ClusterConfig, Protocol};
use crate::stats::Summary;
use crate::trial::{run_trials, TrialConfig};

/// The paper's loss rates, in percent.
pub const PAPER_DELTAS: [u32; 5] = [0, 10, 20, 30, 40];

/// The paper's cluster sizes for this experiment.
pub const PAPER_SCALES: [usize; 3] = [10, 50, 100];

/// Client commands proposed before the crash (spaced at the trial's
/// workload interval) so logs diverge under loss.
pub const WORKLOAD_COMMANDS: usize = 30;

/// One point: protocol × scale × loss rate.
#[derive(Clone, Debug)]
pub struct LossPoint {
    /// `"raft"`, `"zraft"` or `"escape"`.
    pub protocol: &'static str,
    /// Cluster size.
    pub scale: usize,
    /// Loss rate in percent.
    pub delta_pct: u32,
    /// Total leader-election times.
    pub total: Summary,
    /// Mean campaigns per election.
    pub mean_campaigns: f64,
    /// Runs that failed to elect within the horizon (should be zero).
    pub timed_out: usize,
}

fn protocol_by_name(name: &str) -> (Protocol, &'static str) {
    match name {
        "raft" => (Protocol::raft_paper_default(), "raft"),
        "zraft" => (Protocol::zraft_paper_default(), "zraft"),
        "escape" => (Protocol::escape_paper_default(), "escape"),
        other => panic!("unknown protocol {other:?}"),
    }
}

/// Runs the Fig. 11 sweep.
///
/// # Panics
///
/// Panics on unknown protocol names.
pub fn run_loss_sweep(
    protocols: &[&str],
    scales: &[usize],
    deltas_pct: &[u32],
    runs: usize,
    base_seed: u64,
) -> Vec<LossPoint> {
    let mut out = Vec::new();
    for (pi, protocol_name) in protocols.iter().enumerate() {
        for &scale in scales {
            for &delta in deltas_pct {
                let (protocol, name) = protocol_by_name(protocol_name);
                let mut cluster = ClusterConfig::paper_network(scale, protocol, base_seed);
                cluster.loss = if delta == 0 {
                    LossModel::None
                } else {
                    LossModel::BroadcastOmission(delta as f64 / 100.0)
                };
                let template = TrialConfig::with_workload(cluster, WORKLOAD_COMMANDS);
                let seed = base_seed
                    .wrapping_add((pi as u64) << 56)
                    .wrapping_add((scale as u64) << 40)
                    .wrapping_add((delta as u64) << 32);
                let measurements = run_trials(&template, seed, runs);
                let timed_out = runs - measurements.len();
                let denom = measurements.len().max(1) as f64;
                out.push(LossPoint {
                    protocol: name,
                    scale,
                    delta_pct: delta,
                    total: Summary::new(measurements.iter().map(|m| m.total()).collect()),
                    mean_campaigns: measurements
                        .iter()
                        .map(|m| m.campaigns as f64)
                        .sum::<f64>()
                        / denom,
                    timed_out,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_hurts_raft_more_than_escape() {
        let points = run_loss_sweep(&["raft", "escape"], &[10], &[0, 40], 10, 23);
        let mean = |proto: &str, delta: u32| {
            points
                .iter()
                .find(|p| p.protocol == proto && p.delta_pct == delta)
                .unwrap()
                .total
                .mean()
        };
        let raft_40 = mean("raft", 40);
        let escape_40 = mean("escape", 40);
        assert!(
            escape_40 < raft_40,
            "escape {escape_40} should beat raft {raft_40} at Δ=40%"
        );
        // Loss should degrade Raft relative to its lossless baseline.
        assert!(raft_40 > mean("raft", 0));
    }

    #[test]
    fn all_protocols_survive_heavy_loss() {
        let points = run_loss_sweep(&["raft", "zraft", "escape"], &[10], &[30], 5, 31);
        for p in &points {
            assert_eq!(p.timed_out, 0, "{} timed out at Δ=30%", p.protocol);
        }
    }
}
