//! Parameter sweeps that regenerate every figure in the paper's evaluation
//! (§III and §VI).
//!
//! | Module | Figure | What it sweeps |
//! |--------|--------|----------------|
//! | [`randomness`] | Figs. 3, 4 | election-timeout randomization ranges, 5-server Raft |
//! | [`scale`] | Fig. 9 | cluster size 8–128, Raft vs ESCAPE |
//! | [`phases`] | Fig. 10 | forced competing-candidate phases 0–3 at five scales |
//! | [`loss`] | Fig. 11 | message-loss rate 0–40 %, Raft vs Z-Raft vs ESCAPE |
//!
//! Each sweep returns plain result structs; the `escape-bench` binaries
//! format them as the paper's rows/series (CSV + summary tables).

pub mod loss;
pub mod phases;
pub mod randomness;
pub mod scale;

pub use loss::{run_loss_sweep, LossPoint};
pub use phases::{run_phases_sweep, PhasesPoint};
pub use randomness::{run_randomness_sweep, RandomnessPoint};
pub use scale::{run_scale_sweep, ScalePoint};
