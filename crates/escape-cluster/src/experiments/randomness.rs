//! Figures 3 & 4: the randomness trade-off in Raft's leader election.
//!
//! §III: a 5-server Raft cluster at 100–200 ms latency, 1000 runs per
//! election-timeout range. Narrow ranges detect failures fast but split
//! votes often; wide ranges avoid splits but detect slowly — the measured
//! election time is U-shaped in the amount of randomness.

use escape_core::time::Duration;

use crate::cluster::{ClusterConfig, Protocol};
use crate::stats::Summary;
use crate::trial::{run_trials, TrialConfig};

/// The six ranges of Figs. 3–4, in ms: 1500–{1800, 2000, 3000, 4000, 5000,
/// 6000}.
pub const PAPER_RANGES_MS: [(u64, u64); 6] = [
    (1500, 1800),
    (1500, 2000),
    (1500, 3000),
    (1500, 4000),
    (1500, 5000),
    (1500, 6000),
];

/// The cluster size of the §III study.
pub const PAPER_CLUSTER_SIZE: usize = 5;

/// One sweep point: a timeout range and its election-time distribution.
#[derive(Clone, Debug)]
pub struct RandomnessPoint {
    /// Election timeouts were drawn from `[range_ms.0, range_ms.1)`.
    pub range_ms: (u64, u64),
    /// Total (detection + election) leader-election times.
    pub total: Summary,
    /// Detection periods only.
    pub detection: Summary,
    /// Election periods only.
    pub election: Summary,
    /// Fraction of runs whose campaigns saw competing candidates.
    pub split_vote_rate: f64,
}

/// Runs the §III sweep: `runs` leader-failure trials per range.
pub fn run_randomness_sweep(
    ranges_ms: &[(u64, u64)],
    runs: usize,
    base_seed: u64,
) -> Vec<RandomnessPoint> {
    ranges_ms
        .iter()
        .enumerate()
        .map(|(i, &(lo, hi))| {
            let protocol = Protocol::Raft {
                timeout_min: Duration::from_millis(lo),
                timeout_max: Duration::from_millis(hi),
            };
            let cluster =
                ClusterConfig::paper_network(PAPER_CLUSTER_SIZE, protocol, base_seed);
            let template = TrialConfig::election_only(cluster);
            let seed = base_seed.wrapping_add((i as u64) << 32);
            let measurements = run_trials(&template, seed, runs);
            let splits = measurements
                .iter()
                .filter(|m| m.competing_phases > 0)
                .count();
            let denom = measurements.len().max(1);
            RandomnessPoint {
                range_ms: (lo, hi),
                total: Summary::new(measurements.iter().map(|m| m.total()).collect()),
                detection: Summary::new(measurements.iter().map(|m| m.detection()).collect()),
                election: Summary::new(measurements.iter().map(|m| m.election()).collect()),
                split_vote_rate: splits as f64 / denom as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrow_range_splits_more_than_wide() {
        // A scaled-down version of the §III finding: with only 300 ms of
        // randomness, concurrent candidates are far more common than with
        // 4500 ms.
        let points = run_randomness_sweep(&[(1500, 1800), (1500, 6000)], 40, 42);
        assert_eq!(points.len(), 2);
        let narrow = &points[0];
        let wide = &points[1];
        assert!(
            narrow.split_vote_rate > wide.split_vote_rate,
            "narrow {} should split more than wide {}",
            narrow.split_vote_rate,
            wide.split_vote_rate
        );
        // And the wide range detects slower on average.
        assert!(wide.detection.mean() > narrow.detection.mean());
    }

    #[test]
    fn every_run_elects_a_leader() {
        let points = run_randomness_sweep(&[(1500, 3000)], 25, 7);
        assert_eq!(points[0].total.len(), 25, "no run may time out");
    }
}
