//! Figure 10: election time under zero/one/two/three phases with competing
//! candidates (C.C.).
//!
//! §VI-C: both protocols detect failures in similar time, but each forced
//! competing-candidate phase costs Raft roughly one extra election timeout
//! (the "provisional livelock"), while ESCAPE resolves even full-cluster
//! collisions in its first campaign because simultaneous campaigns occupy
//! different term surfaces.
//!
//! Scenario construction is in [`crate::scenario`]; the measurement starts
//! at boot, which is behaviourally identical to the instant after a leader
//! crash (timers armed, no heartbeats) and makes the forced collisions
//! exact.

use escape_core::time::{Duration, Time};
use escape_core::types::ServerId;

use crate::cluster::{ClusterConfig, SimCluster};
use crate::observer::measure_election;
use crate::scenario::competing_phases_protocol;
use crate::stats::Summary;

/// The classes evaluated in Fig. 10.
pub const PAPER_CLASSES: [u32; 4] = [0, 1, 2, 3];

/// One point: protocol × scale × forced-phase class.
#[derive(Clone, Debug)]
pub struct PhasesPoint {
    /// `"raft"` or `"escape"`.
    pub protocol: &'static str,
    /// Cluster size.
    pub scale: usize,
    /// Number of forced competing-candidate phases.
    pub class: u32,
    /// Detection periods (crash → first candidate).
    pub detection: Summary,
    /// Election periods (first candidate → leader).
    pub election: Summary,
    /// Totals.
    pub total: Summary,
}

/// Runs the Fig. 10 sweep.
///
/// # Panics
///
/// Panics on unknown protocol names or if a scripted run fails to elect —
/// both indicate scenario bugs, not measurement noise.
pub fn run_phases_sweep(
    protocols: &[&str],
    scales: &[usize],
    classes: &[u32],
    runs: usize,
    base_seed: u64,
) -> Vec<PhasesPoint> {
    let mut out = Vec::new();
    for protocol in protocols {
        let name: &'static str = match *protocol {
            "raft" => "raft",
            "escape" => "escape",
            other => panic!("unknown protocol {other:?}"),
        };
        for &scale in scales {
            for &class in classes {
                let mut detection = Vec::with_capacity(runs);
                let mut election = Vec::with_capacity(runs);
                let mut total = Vec::with_capacity(runs);
                for run in 0..runs {
                    let seed = base_seed
                        .wrapping_add((class as u64) << 56)
                        .wrapping_add((scale as u64) << 40)
                        .wrapping_add(run as u64);
                    let winner = ServerId::new(2);
                    let cfg = ClusterConfig::paper_network(
                        scale,
                        competing_phases_protocol(name, class, winner),
                        seed,
                    );
                    let mut cluster = SimCluster::new(cfg);
                    let horizon = Time::from_millis(60_000);
                    cluster
                        .run_until_new_leader(escape_core::types::Term::ZERO, horizon)
                        .expect("scripted scenario must elect a leader");
                    assert!(cluster.safety().is_safe(), "safety violation in scenario");
                    let window = Duration::from_millis(200);
                    let m = measure_election(cluster.events(), Time::ZERO, window)
                        .expect("leader event must be observable");
                    detection.push(m.detection());
                    election.push(m.election());
                    total.push(m.total());
                }
                out.push(PhasesPoint {
                    protocol: name,
                    scale,
                    class,
                    detection: Summary::new(detection),
                    election: Summary::new(election),
                    total: Summary::new(total),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raft_cost_grows_linearly_with_phases_while_escape_is_flat() {
        let points = run_phases_sweep(&["raft", "escape"], &[8], &[0, 1, 2], 3, 17);
        let total = |proto: &str, class: u32| {
            points
                .iter()
                .find(|p| p.protocol == proto && p.class == class)
                .unwrap()
                .total
                .mean()
        };
        // Each forced phase costs Raft ≈ one wave (1500 ms).
        let r0 = total("raft", 0);
        let r1 = total("raft", 1);
        let r2 = total("raft", 2);
        assert!(r1 > r0 + Duration::from_millis(1000), "r0={r0} r1={r1}");
        assert!(r2 > r1 + Duration::from_millis(1000), "r1={r1} r2={r2}");
        // ESCAPE stays flat within the 2000 ms envelope.
        let e0 = total("escape", 0);
        let e2 = total("escape", 2);
        assert!(e0 <= Duration::from_millis(2100));
        assert!(e2 <= Duration::from_millis(2100));
        // And the headline comparison: class-2 Raft is several times slower.
        assert!(r2 > e2 * 2);
    }
}
