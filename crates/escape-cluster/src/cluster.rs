//! The simulated cluster: N consensus engines wired into the
//! discrete-event network.
//!
//! [`SimCluster`] owns the nodes and the [`Sim`], pumps events between them,
//! and keeps a protocol-level event log ([`ObservedEvent`]) that the
//! election observer and the safety checker consume. Experiments are plain
//! loops over this API — see [`crate::experiments`].

use std::io;
use std::sync::Arc;

use bytes::Bytes;

use escape_core::config::EscapeParams;
use escape_core::engine::{Action, Node, Options, ProposeError};
use escape_core::message::Message;
use escape_core::policy::{ElectionPolicy, EscapePolicy, RaftPolicy, ZRaftPolicy};
use escape_core::storage::{RecoveredState, Storage};
use escape_core::time::{Duration, Time};
use escape_core::types::{LogIndex, Role, ServerId, Term};
use escape_obs::{
    reconstruct, Event, EventLog, FailoverTimeline, NodeEvents, Observer, RingObserver, TimedEvent,
    TimelineError,
};
use escape_simnet::latency::LatencyModel;
use escape_simnet::loss::LossModel;
use escape_simnet::sim::{Ready, Sim};
use escape_simnet::skew::ClockSkew;

use crate::adapter::{decode_timer, encode_timer};
use crate::invariants::SafetyChecker;

/// Durable-storage hookup for fault campaigns.
///
/// When a cluster is built with [`SimCluster::with_storage`], every node
/// runs against a real (typically fault-injecting) [`Storage`] supplied by
/// this harness instead of the engine's in-memory default, and restarts
/// rebuild the node *from disk* — exercising the actual WAL recovery path
/// rather than pretending in-memory state survived.
pub trait StorageHarness: std::fmt::Debug {
    /// Opens (or reopens after a crash) node `id`'s storage. Called once
    /// per node at construction and again on every [`SimCluster::restart`];
    /// `observer` is the node's event ring (recovery reports torn-tail
    /// truncations through it) and `at_micros` the virtual instant to
    /// stamp those reports with.
    ///
    /// # Errors
    ///
    /// Any I/O error from opening the backing directory.
    fn open(
        &mut self,
        id: ServerId,
        observer: Arc<dyn Observer>,
        at_micros: u64,
    ) -> io::Result<(Box<dyn Storage>, RecoveredState)>;

    /// Called at the instant `id` is killed, before any restart — the
    /// place to inflict crash artifacts (e.g. tearing the WAL tail).
    fn on_crash(&mut self, id: ServerId);

    /// Polled after every engine call: `true` means `id`'s storage can no
    /// longer persist (disk full) and the node must fail-stop — its
    /// un-persisted actions are discarded and the node is crashed.
    fn fail_stop(&self, id: ServerId) -> bool;

    /// Advances the harness's virtual clock so injected-fault events carry
    /// the simulation's timestamps.
    fn tick(&mut self, at_micros: u64);
}

/// Constructs one node's election policy. `(id, cluster_size, seed)` →
/// policy.
pub type PolicyFactory =
    Arc<dyn Fn(ServerId, usize, u64) -> Box<dyn ElectionPolicy> + Send + Sync>;

/// Which election protocol a cluster runs.
#[derive(Clone)]
pub enum Protocol {
    /// Stock Raft with timeouts drawn uniformly from `[min, max)`.
    Raft {
        /// Minimum election timeout.
        timeout_min: Duration,
        /// Maximum election timeout (exclusive).
        timeout_max: Duration,
    },
    /// Z-Raft: static server-id priorities (SCA without PPF).
    ZRaft {
        /// Eq. 1 `baseTime`.
        base_time: Duration,
        /// Eq. 1 `k`.
        spacing: Duration,
    },
    /// ESCAPE: SCA + PPF with the given Eq. 1 parameters.
    Escape {
        /// Eq. 1 `baseTime`.
        base_time: Duration,
        /// Eq. 1 `k`.
        spacing: Duration,
    },
    /// Arbitrary per-node policies (scripted scenarios).
    Custom(PolicyFactory),
}

impl std::fmt::Debug for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Protocol::Raft {
                timeout_min,
                timeout_max,
            } => f
                .debug_struct("Raft")
                .field("timeout_min", timeout_min)
                .field("timeout_max", timeout_max)
                .finish(),
            Protocol::ZRaft { base_time, spacing } => f
                .debug_struct("ZRaft")
                .field("base_time", base_time)
                .field("spacing", spacing)
                .finish(),
            Protocol::Escape { base_time, spacing } => f
                .debug_struct("Escape")
                .field("base_time", base_time)
                .field("spacing", spacing)
                .finish(),
            Protocol::Custom(_) => f.write_str("Custom(..)"),
        }
    }
}

impl Protocol {
    /// Stock Raft with the paper's recommended 1500–3000 ms range (§VI-B).
    pub fn raft_paper_default() -> Self {
        Protocol::Raft {
            timeout_min: Duration::from_millis(1500),
            timeout_max: Duration::from_millis(3000),
        }
    }

    /// ESCAPE with the paper's `baseTime = 1500 ms`, `k = 500 ms` (§VI-B).
    pub fn escape_paper_default() -> Self {
        Protocol::Escape {
            base_time: Duration::from_millis(1500),
            spacing: Duration::from_millis(500),
        }
    }

    /// Z-Raft with the same Eq. 1 parameters as
    /// [`Protocol::escape_paper_default`].
    pub fn zraft_paper_default() -> Self {
        Protocol::ZRaft {
            base_time: Duration::from_millis(1500),
            spacing: Duration::from_millis(500),
        }
    }

    /// Short name for experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Protocol::Raft { .. } => "raft",
            Protocol::ZRaft { .. } => "zraft",
            Protocol::Escape { .. } => "escape",
            Protocol::Custom(_) => "custom",
        }
    }

    fn build_policy(&self, id: ServerId, n: usize, seed: u64) -> Box<dyn ElectionPolicy> {
        match self {
            Protocol::Raft {
                timeout_min,
                timeout_max,
            } => Box::new(RaftPolicy::randomized(*timeout_min, *timeout_max, seed)),
            Protocol::ZRaft { base_time, spacing } => {
                let params = EscapeParams::builder(n)
                    .base_time(*base_time)
                    .spacing(*spacing)
                    .build();
                Box::new(ZRaftPolicy::new(id, params))
            }
            Protocol::Escape { base_time, spacing } => {
                let params = EscapeParams::builder(n)
                    .base_time(*base_time)
                    .spacing(*spacing)
                    .build();
                Box::new(EscapePolicy::new(id, params))
            }
            Protocol::Custom(factory) => factory(id, n, seed),
        }
    }
}

/// Full description of a simulated cluster.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of servers.
    pub n: usize,
    /// Election protocol under test.
    pub protocol: Protocol,
    /// Link latency model.
    pub latency: LatencyModel,
    /// Loss model.
    pub loss: LossModel,
    /// Master seed; every node and the network derive their streams from
    /// it.
    pub seed: u64,
    /// Engine options (heartbeat interval etc.).
    pub options: Options,
    /// Run the safety checker after every event (slows large sims; tests
    /// enable it).
    pub check_safety: bool,
}

impl ClusterConfig {
    /// A cluster with the paper's network (uniform 100–200 ms latency, no
    /// loss) and the given protocol.
    pub fn paper_network(n: usize, protocol: Protocol, seed: u64) -> Self {
        ClusterConfig {
            n,
            protocol,
            latency: LatencyModel::paper_default(),
            loss: LossModel::None,
            seed,
            options: Options::default(),
            check_safety: false,
        }
    }
}

/// A protocol-level observation, timestamped with virtual time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ObservedEvent {
    /// `node` started an election campaign in `term`.
    Candidate {
        /// When.
        at: Time,
        /// Who.
        node: ServerId,
        /// Campaign term.
        term: Term,
    },
    /// `node` won the election for `term`.
    Leader {
        /// When.
        at: Time,
        /// Who.
        node: ServerId,
        /// Leadership term.
        term: Term,
    },
    /// `node` stepped down into `term`.
    Follower {
        /// When.
        at: Time,
        /// Who.
        node: ServerId,
        /// New follower term.
        term: Term,
    },
    /// `node`'s commit index reached `index`.
    Commit {
        /// When.
        at: Time,
        /// Who.
        node: ServerId,
        /// New commit index.
        index: LogIndex,
    },
    /// `node` crashed (fault injection).
    Crash {
        /// When.
        at: Time,
        /// Who.
        node: ServerId,
    },
    /// `node` restarted (fault injection).
    Restart {
        /// When.
        at: Time,
        /// Who.
        node: ServerId,
    },
}

/// N consensus nodes + the simulated network + the observation log.
#[derive(Debug)]
pub struct SimCluster {
    sim: Sim<Message>,
    nodes: Vec<Node>,
    alive: Vec<bool>,
    events: Vec<ObservedEvent>,
    /// Per-node typed event rings (index = `ServerId::index()`): the
    /// engines record into these through their observers, and the
    /// harness stamps kill/restart markers so a failover timeline can be
    /// reconstructed from the streams alone.
    logs: Vec<Arc<EventLog>>,
    checker: SafetyChecker,
    check_safety: bool,
    config: ClusterConfig,
    /// Per-node clock skew: engines see `skew.perceived(id, sim.now())`
    /// instead of the global clock, and their timer deadlines are mapped
    /// back through [`ClockSkew::to_global`].
    skew: ClockSkew,
    /// Durable storage, when the cluster runs a fault campaign.
    storage: Option<Box<dyn StorageHarness>>,
}

impl SimCluster {
    /// Builds and boots a cluster: every node starts as a follower with its
    /// election timer armed.
    ///
    /// # Panics
    ///
    /// Panics if `config.n` is zero.
    pub fn new(config: ClusterConfig) -> Self {
        Self::build(config, None).expect("in-memory cluster construction is infallible")
    }

    /// Builds and boots a cluster whose nodes persist through `harness`:
    /// every node recovers from whatever the harness's backing directories
    /// hold (usually empty at trial start), and restarts rebuild nodes from
    /// disk through the real WAL recovery path.
    ///
    /// # Errors
    ///
    /// Any I/O error from opening a node's storage.
    ///
    /// # Panics
    ///
    /// Panics if `config.n` is zero.
    pub fn with_storage(
        config: ClusterConfig,
        harness: Box<dyn StorageHarness>,
    ) -> io::Result<Self> {
        Self::build(config, Some(harness))
    }

    fn build(config: ClusterConfig, mut storage: Option<Box<dyn StorageHarness>>) -> io::Result<Self> {
        assert!(config.n > 0, "cluster needs at least one server");
        let ids: Vec<ServerId> = (1..=config.n as u32).map(ServerId::new).collect();
        let sim = Sim::new(config.seed, config.latency.clone(), config.loss);
        let logs: Vec<Arc<EventLog>> = ids
            .iter()
            .map(|_| Arc::new(EventLog::default()))
            .collect();
        let nodes: Vec<Node> = ids
            .iter()
            .map(|id| {
                // Derive a per-node seed that is stable in (master seed, id).
                let node_seed = config
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(id.get() as u64);
                let observer: Arc<dyn Observer> =
                    Arc::new(RingObserver::new(Arc::clone(&logs[id.index()])));
                let mut builder = Node::builder(*id, ids.clone())
                    .policy(config.protocol.build_policy(*id, config.n, node_seed))
                    .options(config.options)
                    .observer(Arc::clone(&observer));
                if let Some(harness) = storage.as_mut() {
                    let (store, state) = harness.open(*id, observer, 0)?;
                    builder = builder.storage(store).recover(state);
                }
                Ok(builder.build())
            })
            .collect::<io::Result<Vec<Node>>>()?;
        let mut cluster = SimCluster {
            sim,
            nodes,
            alive: vec![true; config.n],
            events: Vec::new(),
            logs,
            checker: SafetyChecker::new(config.n),
            check_safety: config.check_safety,
            config,
            skew: ClockSkew::none(),
            storage,
        };
        for i in 0..cluster.nodes.len() {
            let actions = cluster.nodes[i].start(Time::ZERO);
            cluster.finish(ServerId::from_index(i), actions);
        }
        Ok(cluster)
    }

    // ---- inspection ----

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Virtual now.
    pub fn now(&self) -> Time {
        self.sim.now()
    }

    /// The node for `id`.
    pub fn node(&self, id: ServerId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutable node access (scenario scripting).
    pub fn node_mut(&mut self, id: ServerId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// All server ids.
    pub fn ids(&self) -> Vec<ServerId> {
        (1..=self.config.n as u32).map(ServerId::new).collect()
    }

    /// `true` if `id` is currently alive.
    pub fn is_alive(&self, id: ServerId) -> bool {
        self.alive[id.index()]
    }

    /// The live leader in the highest term, if any.
    pub fn current_leader(&self) -> Option<ServerId> {
        self.nodes
            .iter()
            .filter(|n| self.alive[n.id().index()] && n.role() == Role::Leader)
            .max_by_key(|n| n.current_term())
            .map(|n| n.id())
    }

    /// The protocol-level observation log.
    pub fn events(&self) -> &[ObservedEvent] {
        &self.events
    }

    /// A snapshot of `id`'s typed event ring (engine emissions plus the
    /// harness's kill/restart markers), in recording order.
    pub fn node_events(&self, id: ServerId) -> Vec<TimedEvent> {
        self.logs[id.index()].snapshot()
    }

    /// Every node's typed event stream, in the shape
    /// [`reconstruct`] consumes.
    pub fn event_streams(&self) -> Vec<NodeEvents> {
        self.ids()
            .into_iter()
            .map(|id| NodeEvents {
                node: id.get(),
                events: self.logs[id.index()].snapshot(),
            })
            .collect()
    }

    /// Reconstructs the failover that began with the most recent crash:
    /// merges every node's typed event stream and decomposes it into
    /// `leader_killed → detected → campaign_started → leader_elected →
    /// first_commit`.
    ///
    /// # Errors
    ///
    /// [`TimelineError`] when no crash was injected yet or a phase marker
    /// is missing (horizon too short, or the property under test failed).
    pub fn failover_timeline(&self) -> Result<FailoverTimeline, TimelineError> {
        let killed_at = self
            .events
            .iter()
            .rev()
            .find_map(|e| match e {
                ObservedEvent::Crash { at, .. } => Some(at.as_micros()),
                _ => None,
            })
            .ok_or(TimelineError::NoDetection)?;
        reconstruct(killed_at, &self.event_streams())
    }

    /// Like [`SimCluster::failover_timeline`], but keyed on the most
    /// recent crash of **`killed` specifically** rather than the most
    /// recent crash of anyone.
    ///
    /// This is the right anchor when faults can crash *other* nodes
    /// around the measured kill: a disk-full victim fail-stopping after
    /// the leader kill used to shift the "killed at" anchor to its own
    /// (irrelevant) crash and garble every phase measurement.
    ///
    /// # Errors
    ///
    /// [`TimelineError`] when `killed` never crashed or a phase marker is
    /// missing.
    pub fn failover_timeline_for(
        &self,
        killed: ServerId,
    ) -> Result<FailoverTimeline, TimelineError> {
        let killed_at = self
            .events
            .iter()
            .rev()
            .find_map(|e| match e {
                ObservedEvent::Crash { at, node } if *node == killed => Some(at.as_micros()),
                _ => None,
            })
            .ok_or(TimelineError::NoDetection)?;
        reconstruct(killed_at, &self.event_streams())
    }

    /// Network statistics.
    pub fn net_stats(&self) -> escape_simnet::sim::NetStats {
        self.sim.stats()
    }

    /// The underlying simulator (loss/partition/latency control).
    pub fn sim_mut(&mut self) -> &mut Sim<Message> {
        &mut self.sim
    }

    /// The safety checker's verdict so far.
    pub fn safety(&self) -> &SafetyChecker {
        &self.checker
    }

    /// Installs per-node clock skew. Set it before running the cluster:
    /// timers already queued keep the global-time deadlines they were
    /// armed with.
    pub fn set_clock_skew(&mut self, skew: ClockSkew) {
        self.skew = skew;
    }

    /// The storage harness, when the cluster was built with one.
    pub fn storage_harness_mut(&mut self) -> Option<&mut Box<dyn StorageHarness>> {
        self.storage.as_mut()
    }

    /// What `id`'s (possibly skewed) clock reads at the global instant
    /// `sim.now()` — the time every engine call on `id` receives.
    pub fn node_now(&self, id: ServerId) -> Time {
        self.skew.perceived(id, self.sim.now())
    }

    // ---- fault injection ----

    /// Crashes `id`.
    pub fn crash(&mut self, id: ServerId) {
        if std::mem::replace(&mut self.alive[id.index()], false) {
            self.sim.crash(id);
            let at = self.sim.now();
            self.events.push(ObservedEvent::Crash { at, node: id });
            // The kill marker goes into the victim's own stream: the
            // harness knows the instant, the node (being dead) does not.
            self.logs[id.index()].push(at.as_micros(), Event::NodeKilled);
            // Crash artifacts (torn WAL tails etc.) are inflicted now, so
            // the eventual restart recovers from damaged media.
            if let Some(harness) = self.storage.as_mut() {
                harness.on_crash(id);
            }
        }
    }

    /// Restarts `id`: volatile state resets, persistent state survives.
    ///
    /// Without a storage harness the node's in-memory persistent state is
    /// carried over (modelling perfect durability). With one, the node is
    /// rebuilt from disk through the harness: reopen → WAL recovery →
    /// [`NodeBuilder::recover`](escape_core::engine::NodeBuilder::recover),
    /// so crash artifacts inflicted at kill time are actually exercised.
    ///
    /// # Panics
    ///
    /// Panics if the storage harness fails to reopen the node's backing
    /// directory — a broken trial, not a survivable fault.
    pub fn restart(&mut self, id: ServerId) {
        if !std::mem::replace(&mut self.alive[id.index()], true) {
            self.sim.restart(id);
            let now = self.sim.now();
            self.events.push(ObservedEvent::Restart { at: now, node: id });
            self.logs[id.index()].push(now.as_micros(), Event::NodeRestarted);
            let local = self.node_now(id);
            let actions = if let Some(harness) = self.storage.as_mut() {
                let observer: Arc<dyn Observer> =
                    Arc::new(RingObserver::new(Arc::clone(&self.logs[id.index()])));
                let (store, state) = harness
                    .open(id, Arc::clone(&observer), now.as_micros())
                    .expect("storage harness must reopen a crashed node's directory");
                let node_seed = self
                    .config
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(id.get() as u64);
                let ids = self.ids();
                let n = self.config.n;
                self.nodes[id.index()] = Node::builder(id, ids)
                    .policy(self.config.protocol.build_policy(id, n, node_seed))
                    .options(self.config.options)
                    .observer(observer)
                    .storage(store)
                    .recover(state)
                    .build();
                self.nodes[id.index()].start(local)
            } else {
                self.nodes[id.index()].restart(local)
            };
            self.finish(id, actions);
        }
    }

    /// Crashes the current leader and returns it.
    ///
    /// # Panics
    ///
    /// Panics if no live leader exists.
    pub fn crash_leader(&mut self) -> ServerId {
        let leader = self.current_leader().expect("no live leader to crash");
        self.crash(leader);
        leader
    }

    // ---- workload ----

    /// Proposes `command` through the current leader.
    ///
    /// # Errors
    ///
    /// Returns [`ProposeError::NotLeader`] if no live leader exists.
    pub fn propose(&mut self, command: Bytes) -> Result<LogIndex, ProposeError> {
        let leader = self
            .current_leader()
            .ok_or(ProposeError::NotLeader { hint: None })?;
        self.tick_storage();
        let now = self.node_now(leader);
        let (index, actions) = self.nodes[leader.index()].propose(command, now)?;
        self.finish(leader, actions);
        Ok(index)
    }

    // ---- the pump ----

    /// Processes events until virtual time reaches `deadline`.
    pub fn run_until(&mut self, deadline: Time) {
        while let Some(ready) = self.sim.step_before(deadline) {
            self.dispatch(ready);
        }
    }

    /// Runs for `span` more virtual time.
    pub fn run_for(&mut self, span: Duration) {
        let deadline = self.now() + span;
        self.run_until(deadline);
    }

    /// Processes events until some live node reports leadership in a term
    /// `> after_term`, or `deadline` passes. Returns the winner.
    pub fn run_until_new_leader(&mut self, after_term: Term, deadline: Time) -> Option<ServerId> {
        let already = self.events.iter().rev().find_map(|e| match e {
            ObservedEvent::Leader { node, term, .. } if *term > after_term => Some(*node),
            _ => None,
        });
        if let Some(node) = already {
            return Some(node);
        }
        let mut cursor = self.events.len();
        while let Some(ready) = self.sim.step_before(deadline) {
            self.dispatch(ready);
            for event in &self.events[cursor..] {
                if let ObservedEvent::Leader { node, term, .. } = event {
                    if *term > after_term {
                        return Some(*node);
                    }
                }
            }
            cursor = self.events.len();
        }
        None
    }

    /// Bootstraps until an initial leader exists and its heartbeats have
    /// circulated for `settle` (letting PPF distribute configurations).
    /// Returns the leader.
    ///
    /// # Panics
    ///
    /// Panics if no leader emerges within a generous horizon (5 minutes of
    /// virtual time) — that would be a liveness bug.
    pub fn bootstrap(&mut self, settle: Duration) -> ServerId {
        let horizon = self.now() + Duration::from_secs(300);
        let leader = self
            .run_until_new_leader(Term::ZERO, horizon)
            .expect("bootstrap: no leader within 5 virtual minutes");
        let settle_deadline = self.now() + settle;
        self.run_until(settle_deadline);
        // The leader may have changed while settling (rare, e.g. under
        // heavy loss); report the live one.
        self.current_leader().unwrap_or(leader)
    }

    fn dispatch(&mut self, ready: Ready<Message>) {
        self.tick_storage();
        match ready {
            Ready::Message { from, to, msg } => {
                if !self.alive[to.index()] {
                    return;
                }
                let now = self.node_now(to);
                let actions = self.nodes[to.index()].handle_message(from, msg, now);
                self.finish(to, actions);
            }
            Ready::Timer { node, token } => {
                if !self.alive[node.index()] {
                    return;
                }
                let now = self.node_now(node);
                let actions = self.nodes[node.index()].handle_timer(decode_timer(token), now);
                self.finish(node, actions);
            }
            Ready::Control { .. } => {
                // Control points are consumed by experiment loops via
                // step_before deadlines; nothing to do here.
            }
        }
    }

    /// Stamps the storage harness with the current virtual instant so any
    /// fault it injects during the next engine call carries sim time.
    fn tick_storage(&mut self) {
        if let Some(harness) = self.storage.as_mut() {
            harness.tick(self.sim.now().as_micros());
        }
    }

    /// Absorbs `actions` — unless the node's storage demands a fail-stop
    /// (disk full): a server that cannot persist must halt rather than
    /// send, so its un-persisted actions are discarded and it is crashed
    /// on the spot (write-before-send, preserved under faults).
    fn finish(&mut self, id: ServerId, actions: Vec<Action>) {
        let fail_stop = self
            .storage
            .as_ref()
            .is_some_and(|harness| harness.fail_stop(id));
        if fail_stop {
            self.crash(id);
            return;
        }
        self.absorb(id, actions);
    }

    /// Routes a node's actions into the simulator and the observation log.
    fn absorb(&mut self, id: ServerId, actions: Vec<Action>) {
        let at = self.sim.now();
        // Group broadcast sends so the loss model can omit receivers per
        // fan-out (§VI-D).
        let mut broadcast: Vec<(u64, Vec<(ServerId, Message)>)> = Vec::new();
        for action in actions {
            match action {
                Action::Send {
                    to,
                    msg,
                    broadcast: Some(bid),
                } => match broadcast.iter_mut().find(|(b, _)| *b == bid) {
                    Some((_, fanout)) => fanout.push((to, msg)),
                    None => broadcast.push((bid, vec![(to, msg)])),
                },
                Action::Send {
                    to,
                    msg,
                    broadcast: None,
                } => self.sim.send(id, to, msg),
                Action::SetTimer { token, deadline } => {
                    // The engine computed `deadline` on its own (possibly
                    // skewed) clock; the simulator fires on the global one.
                    let deadline = if self.skew.is_none() {
                        deadline
                    } else {
                        self.skew.to_global(id, deadline).max(at)
                    };
                    self.sim.set_timer(id, encode_timer(token), deadline)
                }
                Action::BecameCandidate { term } => self.events.push(ObservedEvent::Candidate {
                    at,
                    node: id,
                    term,
                }),
                Action::BecameLeader { term } => {
                    self.events.push(ObservedEvent::Leader {
                        at,
                        node: id,
                        term,
                    });
                    self.checker.observe_leader(id, term);
                }
                Action::BecameFollower { term } => self.events.push(ObservedEvent::Follower {
                    at,
                    node: id,
                    term,
                }),
                Action::Committed { index } => {
                    self.events.push(ObservedEvent::Commit {
                        at,
                        node: id,
                        index,
                    });
                    self.checker
                        .observe_commit(&self.nodes[id.index()], index);
                }
                Action::Applied { .. }
                | Action::ReadReady { .. }
                | Action::ReadFailed { .. } => {}
            }
        }
        for (_, fanout) in broadcast {
            self.sim.send_broadcast(id, fanout);
        }
        if self.check_safety {
            self.checker.check_cluster(&self.nodes, &self.alive);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use escape_obs::PhaseBounds;

    /// A reflex-scale cluster: LAN latencies and Eq. 1 parameters small
    /// enough that every failover phase must fit the paper's 200 ms
    /// reflex bound (the paper-default WAN profile measures seconds).
    fn reflex_config(seed: u64) -> ClusterConfig {
        ClusterConfig {
            n: 5,
            protocol: Protocol::Escape {
                base_time: Duration::from_millis(150),
                spacing: Duration::from_millis(50),
            },
            latency: LatencyModel::Uniform {
                min: Duration::from_millis(1),
                max: Duration::from_millis(5),
            },
            loss: LossModel::None,
            seed,
            options: escape_core::engine::Options {
                heartbeat_interval: Duration::from_millis(50),
                ..escape_core::engine::Options::default()
            },
            // Election/commit safety is still asserted (those observers
            // are unconditional); the per-event structural sweep is off
            // because it flags the transient configuration duplicates
            // that rearrangement-in-flight legitimately produces.
            check_safety: false,
        }
    }

    /// The tentpole's acceptance test: kill the leader, reconstruct the
    /// failover from the per-node typed event streams alone, and check
    /// the paper's properties as numbers — the phases telescope to the
    /// total, exactly one campaign ran, and every phase fits the 200 ms
    /// reflex bound.
    #[test]
    fn killed_leader_timeline_is_one_campaign_within_reflex_bounds() {
        let mut cluster = SimCluster::new(reflex_config(42));
        cluster.bootstrap(Duration::from_millis(500));
        let old_term = cluster
            .node(cluster.current_leader().expect("bootstrapped leader"))
            .current_term();
        let killed = cluster.crash_leader();
        let horizon = cluster.now() + Duration::from_secs(10);
        let winner = cluster
            .run_until_new_leader(old_term, horizon)
            .expect("a successor must be elected");
        // Let the successor's no-op commit (its FirstCommit marker).
        cluster.run_for(Duration::from_millis(500));

        let timeline = cluster.failover_timeline().expect("reconstructable");
        assert_eq!(timeline.winner, winner.get());
        assert_ne!(timeline.winner, killed.get(), "the corpse cannot win");
        assert_eq!(timeline.campaigns, 1, "ESCAPE's one-campaign property");
        assert_eq!(timeline.distinct_candidates, 1);
        let phase_sum: u64 = timeline.phases().iter().map(|&(_, d)| d).sum();
        assert_eq!(phase_sum, timeline.total_micros(), "phases telescope");
        timeline
            .check_bounds(&PhaseBounds::reflex_200ms())
            .unwrap_or_else(|violations| {
                panic!("reflex bound violated: {violations}\n{}", timeline.render())
            });
        assert!(
            cluster.safety().is_safe(),
            "violations: {:?}",
            cluster.safety().violations()
        );
    }

    /// Regression: the timeline used to key off the most recent crash of
    /// *anyone*, so an unrelated node dying after the measured kill (a
    /// disk-full fail-stop, say) shifted the anchor and garbled every
    /// phase. `failover_timeline_for` pins the anchor to the killed
    /// leader's own crash event.
    #[test]
    fn timeline_keyed_by_killed_node_survives_a_later_unrelated_crash() {
        let mut cluster = SimCluster::new(reflex_config(77));
        cluster.bootstrap(Duration::from_millis(500));
        let old_term = cluster
            .node(cluster.current_leader().expect("bootstrapped leader"))
            .current_term();
        let killed = cluster.crash_leader();
        let horizon = cluster.now() + Duration::from_secs(10);
        let winner = cluster
            .run_until_new_leader(old_term, horizon)
            .expect("a successor must be elected");
        cluster.run_for(Duration::from_millis(500));

        // A bystander (not the old leader, not the new one) crashes well
        // after the failover completed.
        let bystander = cluster
            .ids()
            .into_iter()
            .find(|id| *id != killed && *id != winner && cluster.is_alive(*id))
            .expect("five nodes leave a bystander");
        cluster.crash(bystander);
        cluster.run_for(Duration::from_millis(200));

        // Keyed on the killed leader, the timeline still reconstructs and
        // still fits the reflex bounds.
        let timeline = cluster
            .failover_timeline_for(killed)
            .expect("keyed reconstruction survives the extra crash");
        assert_eq!(timeline.winner, winner.get());
        assert_eq!(timeline.campaigns, 1);
        timeline
            .check_bounds(&PhaseBounds::reflex_200ms())
            .unwrap_or_else(|violations| {
                panic!("reflex bound violated: {violations}\n{}", timeline.render())
            });

        // The old most-recent-crash anchor, by contrast, keys off the
        // bystander's crash — after which no election happened at all, so
        // reconstruction cannot find the same failover (it either errors
        // or measures a different window).
        match cluster.failover_timeline() {
            Err(_) => {}
            Ok(mislabeled) => assert_ne!(
                (mislabeled.leader_killed_at, mislabeled.winner),
                (timeline.leader_killed_at, timeline.winner),
                "most-recent-crash keying should not accidentally equal the keyed anchor"
            ),
        }
    }

    /// Determinism: the same seed must yield byte-identical event logs —
    /// the property that makes a simnet trace a reproducible bug report.
    #[test]
    fn same_seed_yields_byte_identical_event_logs() {
        let run = |seed: u64| -> String {
            let mut cluster = SimCluster::new(reflex_config(seed));
            cluster.bootstrap(Duration::from_millis(500));
            let term = cluster
                .node(cluster.current_leader().expect("leader"))
                .current_term();
            cluster.crash_leader();
            let horizon = cluster.now() + Duration::from_secs(10);
            cluster.run_until_new_leader(term, horizon);
            cluster.run_for(Duration::from_millis(500));
            cluster
                .ids()
                .into_iter()
                .map(|id| format!("node {}\n{}", id.get(), cluster.logs[id.index()].encode()))
                .collect()
        };
        let first = run(7);
        assert_eq!(first, run(7), "same seed must replay identically");
        assert!(!first.is_empty());
        assert_ne!(first, run(8), "different seeds must actually differ");
    }

    /// Determinism under the PR-9 fault models: duplication, reordering,
    /// and per-node clock skew/drift all draw from the seeded streams, so
    /// the same seed must still replay byte-for-byte — and the faults
    /// must actually fire, or this test proves nothing.
    #[test]
    fn same_seed_is_deterministic_with_duplication_reorder_and_skew() {
        use escape_simnet::loss::ChaosModel;
        use escape_simnet::skew::ClockSkew;

        let run = |seed: u64| -> (String, escape_simnet::sim::NetStats) {
            let mut cluster = SimCluster::new(reflex_config(seed));
            cluster.sim_mut().set_chaos(ChaosModel {
                duplicate_p: 0.2,
                reorder_p: 0.3,
                reorder_span: Duration::from_millis(10),
            });
            let mut skew = ClockSkew::none();
            for (i, id) in cluster.ids().into_iter().enumerate() {
                let sign = if i % 2 == 0 { 1 } else { -1 };
                skew.set(id, sign * 2_000 * (i as i64 + 1), sign * 100);
            }
            cluster.set_clock_skew(skew);
            cluster.bootstrap(Duration::from_millis(500));
            let term = cluster
                .node(cluster.current_leader().expect("leader"))
                .current_term();
            cluster.crash_leader();
            let horizon = cluster.now() + Duration::from_secs(10);
            cluster.run_until_new_leader(term, horizon);
            cluster.run_for(Duration::from_millis(500));
            let logs = cluster
                .ids()
                .into_iter()
                .map(|id| format!("node {}\n{}", id.get(), cluster.logs[id.index()].encode()))
                .collect();
            (logs, cluster.net_stats())
        };
        let (first, stats) = run(7);
        assert!(stats.duplicated > 0, "duplication must have fired");
        assert!(stats.reordered > 0, "reordering must have fired");
        let (replay, _) = run(7);
        assert_eq!(first, replay, "chaos + skew must replay identically");
        let (other, _) = run(9);
        assert_ne!(first, other, "different seeds must actually differ");
    }
}
