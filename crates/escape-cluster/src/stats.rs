//! Summary statistics and CDFs for experiment output.
//!
//! The paper reports averages (Figs. 4, 9-right, 10, 11) and cumulative
//! distributions (Figs. 3, 9-left/middle); [`Summary`] and [`Cdf`] produce
//! both from a vector of per-run measurements.

use escape_core::time::Duration;

/// Aggregate statistics over a set of duration samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Summary {
    sorted: Vec<Duration>,
}

impl Summary {
    /// Builds a summary from samples (order irrelevant).
    pub fn new(mut samples: Vec<Duration>) -> Self {
        samples.sort_unstable();
        Summary { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Arithmetic mean (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.sorted.is_empty() {
            return Duration::ZERO;
        }
        let total: u64 = self.sorted.iter().map(|d| d.as_micros()).sum();
        Duration::from_micros(total / self.sorted.len() as u64)
    }

    /// Smallest sample.
    pub fn min(&self) -> Duration {
        self.sorted.first().copied().unwrap_or(Duration::ZERO)
    }

    /// Largest sample.
    pub fn max(&self) -> Duration {
        self.sorted.last().copied().unwrap_or(Duration::ZERO)
    }

    /// The `q`-quantile (nearest-rank), `q` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Duration {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
        if self.sorted.is_empty() {
            return Duration::ZERO;
        }
        let rank = ((q * self.sorted.len() as f64).ceil() as usize)
            .clamp(1, self.sorted.len());
        self.sorted[rank - 1]
    }

    /// Median.
    pub fn median(&self) -> Duration {
        self.quantile(0.5)
    }

    /// Fraction of samples `<= threshold` — the CDF evaluated at a point
    /// (used for claims like "less than 40 % of Raft's campaigns completed
    /// within 2000 ms", §VI-B).
    pub fn fraction_within(&self, threshold: Duration) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let within = self.sorted.partition_point(|d| *d <= threshold);
        within as f64 / self.sorted.len() as f64
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[Duration] {
        &self.sorted
    }
}

/// An empirical CDF sampled on a fixed grid, ready for CSV output.
#[derive(Clone, Debug, PartialEq)]
pub struct Cdf {
    points: Vec<(Duration, f64)>,
}

impl Cdf {
    /// Evaluates the CDF of `summary` at `steps` evenly spaced points
    /// between `lo` and `hi` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `steps < 2` or `hi <= lo`.
    pub fn on_grid(summary: &Summary, lo: Duration, hi: Duration, steps: usize) -> Self {
        assert!(steps >= 2, "need at least two grid points");
        assert!(hi > lo, "empty grid range");
        let span = hi.as_micros() - lo.as_micros();
        let points = (0..steps)
            .map(|i| {
                let x = Duration::from_micros(
                    lo.as_micros() + span * i as u64 / (steps as u64 - 1),
                );
                (x, summary.fraction_within(x))
            })
            .collect();
        Cdf { points }
    }

    /// `(x, F(x))` pairs in ascending `x`.
    pub fn points(&self) -> &[(Duration, f64)] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn summary(vals: &[u64]) -> Summary {
        Summary::new(vals.iter().copied().map(ms).collect())
    }

    #[test]
    fn mean_min_max_median() {
        let s = summary(&[30, 10, 20, 40]);
        assert_eq!(s.mean(), ms(25));
        assert_eq!(s.min(), ms(10));
        assert_eq!(s.max(), ms(40));
        assert_eq!(s.median(), ms(20));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let s = summary(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(s.quantile(0.1), ms(1));
        assert_eq!(s.quantile(0.5), ms(5));
        assert_eq!(s.quantile(0.95), ms(10));
        assert_eq!(s.quantile(1.0), ms(10));
        assert_eq!(s.quantile(0.0), ms(1));
    }

    #[test]
    fn empty_summary_is_harmless() {
        let s = Summary::new(Vec::new());
        assert!(s.is_empty());
        assert_eq!(s.mean(), Duration::ZERO);
        assert_eq!(s.quantile(0.9), Duration::ZERO);
        assert_eq!(s.fraction_within(ms(100)), 0.0);
    }

    #[test]
    fn fraction_within_matches_by_hand() {
        let s = summary(&[100, 200, 300, 400]);
        assert_eq!(s.fraction_within(ms(50)), 0.0);
        assert_eq!(s.fraction_within(ms(200)), 0.5);
        assert_eq!(s.fraction_within(ms(1000)), 1.0);
        assert_eq!(s.fraction_within(ms(250)), 0.5);
    }

    #[test]
    fn cdf_grid_is_monotone_and_spans_range() {
        let s = summary(&[100, 150, 150, 180, 400]);
        let cdf = Cdf::on_grid(&s, ms(100), ms(400), 7);
        let pts = cdf.points();
        assert_eq!(pts.len(), 7);
        assert_eq!(pts[0].0, ms(100));
        assert_eq!(pts[6].0, ms(400));
        assert!((pts[6].1 - 1.0).abs() < f64::EPSILON);
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be monotone");
        }
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn quantile_rejects_out_of_range() {
        let _ = summary(&[1]).quantile(1.5);
    }
}
