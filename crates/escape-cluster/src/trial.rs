//! The leader-failure trial: the atomic unit behind Figs. 3, 4, 9 and 11.
//!
//! One trial = bootstrap a cluster, optionally run a client workload, crash
//! the leader at a de-correlated instant, and measure the resulting
//! election. Experiments sweep trial parameters and aggregate with
//! [`crate::stats`].

use bytes::Bytes;

use escape_core::rand::Rng64;
use escape_core::time::{Duration, Time};
use escape_core::types::ServerId;

use crate::cluster::{ClusterConfig, SimCluster};
use crate::observer::{measure_election, ElectionMeasurement};

/// Tuning for one leader-failure trial.
#[derive(Clone, Debug)]
pub struct TrialConfig {
    /// The cluster under test.
    pub cluster: ClusterConfig,
    /// How long to let the elected leader settle before the crash (lets PPF
    /// distribute configurations; ≥ a few heartbeat intervals).
    pub settle: Duration,
    /// Client commands proposed (at `workload_interval`) between settle and
    /// crash; zero for pure election experiments. Under loss this is what
    /// makes follower logs diverge (§VI-D).
    pub workload_commands: usize,
    /// Spacing between workload proposals.
    pub workload_interval: Duration,
    /// Measurement horizon after the crash; a run without a new leader by
    /// then reports `None` (never happened in practice below 60 s).
    pub horizon: Duration,
    /// Warm-up crash/recovery cycles before the measured crash. The paper
    /// "repeatedly crashed the leader … for 1000 runs" with recovery in
    /// between, so by steady state the deposed leaders' configurations are
    /// back in circulation — this matters for Z-Raft, whose static
    /// top-priority configuration would otherwise leave the pool with the
    /// first crashed leader.
    pub warm_crashes: usize,
}

impl TrialConfig {
    /// A pure election trial (no workload) with sensible settle/horizon.
    pub fn election_only(cluster: ClusterConfig) -> Self {
        TrialConfig {
            cluster,
            settle: Duration::from_millis(1200),
            workload_commands: 0,
            workload_interval: Duration::from_millis(50),
            horizon: Duration::from_secs(120),
            warm_crashes: 0,
        }
    }

    /// A trial with a replication workload before the crash and one
    /// warm-up crash/recovery cycle (Fig. 11's steady-state methodology).
    pub fn with_workload(cluster: ClusterConfig, commands: usize) -> Self {
        TrialConfig {
            workload_commands: commands,
            warm_crashes: 1,
            ..TrialConfig::election_only(cluster)
        }
    }
}

/// The outcome of one trial.
#[derive(Clone, Debug)]
pub struct TrialOutcome {
    /// The crashed (old) leader.
    pub crashed_leader: ServerId,
    /// The measured election, or `None` if the horizon passed first.
    pub measurement: Option<ElectionMeasurement>,
    /// Messages the network carried during the whole trial.
    pub messages_sent: u64,
    /// Whether the safety checker stayed green.
    pub safe: bool,
}

/// Runs one leader-failure trial.
///
/// The crash instant is offset by a uniform draw in `[0, heartbeat)` from a
/// dedicated RNG stream so it de-correlates from the heartbeat phase — the
/// paper's repeated-crash loop achieves the same effect by accumulated
/// drift.
pub fn run_leader_failure_trial(config: &TrialConfig) -> TrialOutcome {
    let mut cluster = SimCluster::new(config.cluster.clone());
    let mut jitter_rng = cluster.sim_mut().fork_rng(0x00C0_FFEE);

    // Phase 1: bootstrap to a stable leader.
    cluster.bootstrap(config.settle);

    // Phase 1b: warm-up crash/recovery cycles — the deposed leader comes
    // back as a follower and its configuration re-enters circulation.
    for _ in 0..config.warm_crashes {
        let victim = match cluster.current_leader() {
            Some(l) => l,
            None => break,
        };
        let term = cluster.node(victim).current_term();
        cluster.crash(victim);
        let horizon = cluster.now() + Duration::from_secs(300);
        cluster
            .run_until_new_leader(term, horizon)
            .expect("warm-up crash must re-elect");
        cluster.restart(victim);
        let settle = cluster.now() + config.settle;
        cluster.run_until(settle);
    }

    // Phase 2: optional client workload.
    for i in 0..config.workload_commands {
        let payload = Bytes::from(format!("cmd-{i}").into_bytes());
        // Ignore NotLeader windows (leader may be re-electing under loss).
        let _ = cluster.propose(payload);
        let next = cluster.now() + config.workload_interval;
        cluster.run_until(next);
    }

    // Phase 3: crash the leader at a de-correlated instant.
    let hb = config.cluster.options.heartbeat_interval;
    let offset = Duration::from_micros(jitter_rng.gen_range(0, hb.as_micros().max(1)));
    let crash_at = cluster.now() + offset;
    cluster.run_until(crash_at);
    let crashed = match cluster.current_leader() {
        Some(leader) => {
            cluster.crash(leader);
            leader
        }
        None => {
            // Extremely lossy bootstrap can leave a leaderless instant; wait
            // for one and crash it then.
            let term = cluster
                .events()
                .iter()
                .rev()
                .find_map(|e| match e {
                    crate::cluster::ObservedEvent::Leader { term, .. } => Some(*term),
                    _ => None,
                })
                .unwrap_or(escape_core::types::Term::ZERO);
            let horizon = cluster.now() + Duration::from_secs(300);
            cluster
                .run_until_new_leader(term, horizon)
                .expect("no leader to crash");
            cluster.crash_leader()
        }
    };
    let crash_time: Time = cluster.now();

    // Phase 4: measure the recovery election.
    let term_at_crash = cluster.node(crashed).current_term();
    let deadline = crash_time + config.horizon;
    cluster.run_until_new_leader(term_at_crash, deadline);

    let window = cluster.sim_mut().latency().max_latency();
    let measurement = measure_election(cluster.events(), crash_time, window);

    if measurement.is_none() && std::env::var_os("ESCAPE_TRIAL_DEBUG").is_some() {
        eprintln!(
            "trial debug: crashed {crashed} (term {term_at_crash:?}) at {crash_time}, no successor by {deadline}"
        );
        for event in cluster.events().iter().rev().take(12).collect::<Vec<_>>().iter().rev() {
            eprintln!("  event {event:?}");
        }
        for id in cluster.ids() {
            let n = cluster.node(id);
            eprintln!(
                "  {id}: role={:?} term={} log={} voted={:?} cfg={:?} alive={}",
                n.role(),
                n.current_term(),
                n.log().last_index(),
                n.voted_for(),
                n.current_config().map(|c| (
                    c.priority.get(),
                    c.conf_clock.get(),
                    c.timer_period.as_millis()
                )),
                cluster.is_alive(id)
            );
        }
    }

    TrialOutcome {
        crashed_leader: crashed,
        measurement,
        messages_sent: cluster.net_stats().sent,
        safe: cluster.safety().is_safe(),
    }
}

/// Runs `runs` independent trials (seeds `base_seed..base_seed+runs`) and
/// collects the successful measurements.
pub fn run_trials(template: &TrialConfig, base_seed: u64, runs: usize) -> Vec<ElectionMeasurement> {
    let mut out = Vec::with_capacity(runs);
    for run in 0..runs {
        let mut config = template.clone();
        config.cluster.seed = base_seed.wrapping_add(run as u64);
        let outcome = run_leader_failure_trial(&config);
        assert!(outcome.safe, "safety violation in trial {run}");
        if let Some(m) = outcome.measurement {
            out.push(m);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Protocol;

    fn quick(cluster: ClusterConfig) -> TrialConfig {
        TrialConfig {
            horizon: Duration::from_secs(60),
            ..TrialConfig::election_only(cluster)
        }
    }

    #[test]
    fn raft_trial_elects_a_replacement() {
        let cfg = quick(ClusterConfig::paper_network(
            5,
            Protocol::raft_paper_default(),
            11,
        ));
        let outcome = run_leader_failure_trial(&cfg);
        let m = outcome.measurement.expect("a new leader must emerge");
        assert_ne!(m.winner, outcome.crashed_leader);
        assert!(m.total() >= Duration::from_millis(500), "implausibly fast");
        assert!(outcome.safe);
    }

    #[test]
    fn escape_trial_resolves_in_one_campaign() {
        let cfg = quick(ClusterConfig::paper_network(
            5,
            Protocol::escape_paper_default(),
            13,
        ));
        let outcome = run_leader_failure_trial(&cfg);
        let m = outcome.measurement.expect("a new leader must emerge");
        // Lemma 5: nonfaulty candidates ⇒ single campaign.
        assert_eq!(m.campaigns, 1, "ESCAPE should not repeat campaigns");
        // §VI-B: every ESCAPE election completes within 2000 ms.
        assert!(
            m.total() <= Duration::from_millis(2100),
            "total {} exceeds the paper's bound",
            m.total()
        );
    }

    #[test]
    fn trials_are_reproducible_per_seed() {
        let cfg = quick(ClusterConfig::paper_network(
            5,
            Protocol::escape_paper_default(),
            21,
        ));
        let a = run_leader_failure_trial(&cfg);
        let b = run_leader_failure_trial(&cfg);
        assert_eq!(a.measurement, b.measurement);
        assert_eq!(a.messages_sent, b.messages_sent);
    }

    #[test]
    fn run_trials_aggregates() {
        let cfg = quick(ClusterConfig::paper_network(
            4,
            Protocol::escape_paper_default(),
            0,
        ));
        let ms = run_trials(&cfg, 100, 5);
        assert_eq!(ms.len(), 5);
    }
}
