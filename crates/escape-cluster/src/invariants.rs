//! Runtime safety checking.
//!
//! The paper's §V argues ESCAPE preserves Raft's safety properties
//! (Theorems 1–3). [`SafetyChecker`] turns those arguments into executable
//! checks that run *during* simulation, so any violation pinpoints the
//! first event that caused it:
//!
//! * **Election Safety** — at most one leader per term.
//! * **Commit Safety / State-Machine Safety** — once any node commits an
//!   entry at an index, every later commit of that index carries the same
//!   `(term, payload)`.
//! * **Log Matching** (on demand) — any two logs agree on every index where
//!   their terms agree, and committed prefixes are identical.
//! * **Configuration uniqueness** (Theorem 3, on demand) — no two *live*
//!   servers hold the same priority at the same configuration clock.

use std::collections::BTreeMap;

use escape_core::engine::Node;
use escape_core::log::Payload;
use escape_core::types::{LogIndex, ServerId, Term};

/// A detected safety violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Two leaders claimed the same term.
    TwoLeadersOneTerm {
        /// The contested term.
        term: Term,
        /// First claimant.
        first: ServerId,
        /// Second claimant.
        second: ServerId,
    },
    /// An index was committed with two different entries.
    CommittedEntryChanged {
        /// The index in question.
        index: LogIndex,
        /// Term recorded first.
        first_term: Term,
        /// Conflicting term.
        second_term: Term,
    },
    /// Two logs disagree beneath their common committed prefix.
    CommittedPrefixDiverged {
        /// First node.
        a: ServerId,
        /// Second node.
        b: ServerId,
        /// First divergent index.
        index: LogIndex,
    },
    /// Theorem 3 violated: same priority, same clock, two live holders.
    DuplicateConfiguration {
        /// First holder.
        a: ServerId,
        /// Second holder.
        b: ServerId,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::TwoLeadersOneTerm { term, first, second } => {
                write!(f, "two leaders in {term}: {first} and {second}")
            }
            Violation::CommittedEntryChanged {
                index,
                first_term,
                second_term,
            } => write!(
                f,
                "committed entry at {index} changed term: {first_term} → {second_term}"
            ),
            Violation::CommittedPrefixDiverged { a, b, index } => {
                write!(f, "committed prefixes of {a} and {b} diverge at {index}")
            }
            Violation::DuplicateConfiguration { a, b } => {
                write!(f, "{a} and {b} hold the same prioritized configuration")
            }
        }
    }
}

/// Fingerprint of a committed entry: enough to detect divergence without
/// retaining payloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct EntryMark {
    term: Term,
    payload_hash: u64,
}

fn hash_payload(payload: &Payload) -> u64 {
    let bytes: &[u8] = match payload {
        Payload::Noop => b"\x00noop",
        Payload::Command(c) => c.as_ref(),
    };
    escape_core::hash::fnv1a(bytes)
}

/// Accumulates observations and flags the first violation of each kind.
#[derive(Clone, Debug)]
pub struct SafetyChecker {
    cluster_size: usize,
    leaders_by_term: BTreeMap<Term, ServerId>,
    committed: BTreeMap<LogIndex, EntryMark>,
    violations: Vec<Violation>,
}

impl SafetyChecker {
    /// A checker for a cluster of `n` servers.
    pub fn new(n: usize) -> Self {
        SafetyChecker {
            cluster_size: n,
            leaders_by_term: BTreeMap::new(),
            committed: BTreeMap::new(),
            violations: Vec::new(),
        }
    }

    /// All violations found so far (empty = safe).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// `true` if no violation has been observed.
    pub fn is_safe(&self) -> bool {
        self.violations.is_empty()
    }

    /// Records a leadership claim (Election Safety).
    pub fn observe_leader(&mut self, node: ServerId, term: Term) {
        match self.leaders_by_term.get(&term) {
            Some(prev) if *prev != node => self.violations.push(Violation::TwoLeadersOneTerm {
                term,
                first: *prev,
                second: node,
            }),
            _ => {
                self.leaders_by_term.insert(term, node);
            }
        }
    }

    /// Records a commit advance on `node` up to `index` (Commit Safety).
    pub fn observe_commit(&mut self, node: &Node, index: LogIndex) {
        // Walk down from `index` registering marks; stop at already-known
        // prefix for O(new entries) cost.
        let mut i = index;
        while i > LogIndex::ZERO {
            let entry = match node.log().entry(i) {
                Some(e) => e,
                None => break,
            };
            let mark = EntryMark {
                term: entry.term,
                payload_hash: hash_payload(&entry.payload),
            };
            match self.committed.get(&i) {
                Some(prev) if *prev != mark => {
                    self.violations.push(Violation::CommittedEntryChanged {
                        index: i,
                        first_term: prev.term,
                        second_term: mark.term,
                    });
                    break;
                }
                Some(_) => break, // known-good prefix below
                None => {
                    self.committed.insert(i, mark);
                }
            }
            i = i.prev();
        }
    }

    /// Full-cluster structural check: Log Matching on committed prefixes and
    /// Theorem 3 configuration uniqueness among live nodes. Quadratic in
    /// cluster size — run at checkpoints, not per event, for big sims.
    pub fn check_cluster(&mut self, nodes: &[Node], alive: &[bool]) {
        debug_assert_eq!(nodes.len(), self.cluster_size);
        // Committed-prefix agreement. By the Log Matching property, a
        // single agreeing index implies the whole prefix agrees, so
        // comparing the common committed tail entry is sufficient here
        // (the exhaustive variant is `check_full_prefixes`).
        for (ia, a) in nodes.iter().enumerate() {
            for b in nodes.iter().skip(ia + 1) {
                let common = a.commit_index().min(b.commit_index());
                if common == LogIndex::ZERO {
                    continue;
                }
                if let (Some(ea), Some(eb)) = (a.log().entry(common), b.log().entry(common)) {
                    if ea.term != eb.term || ea.payload != eb.payload {
                        self.violations.push(Violation::CommittedPrefixDiverged {
                            a: a.id(),
                            b: b.id(),
                            index: common,
                        });
                    }
                }
            }
        }
        // Theorem 3: configuration uniqueness among live servers.
        let mut seen: BTreeMap<(u64, u64), ServerId> = BTreeMap::new();
        for node in nodes {
            if !alive[node.id().index()] {
                continue;
            }
            if let Some(config) = node.current_config() {
                let key = (config.priority.get(), config.conf_clock.get());
                if let Some(prev) = seen.insert(key, node.id()) {
                    self.violations.push(Violation::DuplicateConfiguration {
                        a: prev,
                        b: node.id(),
                    });
                }
            }
        }
    }

    /// Exhaustive committed-prefix comparison between every pair of nodes
    /// (every index, not just the tail). For end-of-test verification.
    pub fn check_full_prefixes(&mut self, nodes: &[Node]) {
        for (ia, a) in nodes.iter().enumerate() {
            for b in nodes.iter().skip(ia + 1) {
                let common = a.commit_index().min(b.commit_index());
                let mut i = LogIndex::ZERO.next();
                while i <= common {
                    let (ea, eb) = match (a.log().entry(i), b.log().entry(i)) {
                        (Some(x), Some(y)) => (x, y),
                        _ => break,
                    };
                    if ea.term != eb.term || ea.payload != eb.payload {
                        self.violations.push(Violation::CommittedPrefixDiverged {
                            a: a.id(),
                            b: b.id(),
                            index: i,
                        });
                        break;
                    }
                    i = i.next();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn election_safety_flags_second_leader() {
        let mut c = SafetyChecker::new(3);
        c.observe_leader(ServerId::new(1), Term::new(5));
        assert!(c.is_safe());
        // Same node re-claiming is fine (idempotent observation).
        c.observe_leader(ServerId::new(1), Term::new(5));
        assert!(c.is_safe());
        c.observe_leader(ServerId::new(2), Term::new(5));
        assert!(!c.is_safe());
        assert!(matches!(
            c.violations()[0],
            Violation::TwoLeadersOneTerm { .. }
        ));
    }

    #[test]
    fn different_terms_different_leaders_is_fine() {
        let mut c = SafetyChecker::new(3);
        c.observe_leader(ServerId::new(1), Term::new(1));
        c.observe_leader(ServerId::new(2), Term::new(2));
        c.observe_leader(ServerId::new(1), Term::new(7));
        assert!(c.is_safe());
    }

    #[test]
    fn violation_display_is_informative() {
        let v = Violation::TwoLeadersOneTerm {
            term: Term::new(3),
            first: ServerId::new(1),
            second: ServerId::new(2),
        };
        assert_eq!(v.to_string(), "two leaders in t(3): S1 and S2");
        let v = Violation::DuplicateConfiguration {
            a: ServerId::new(4),
            b: ServerId::new(5),
        };
        assert!(v.to_string().contains("S4"));
    }

    #[test]
    fn payload_hash_distinguishes_contents() {
        use bytes::Bytes;
        let a = hash_payload(&Payload::Command(Bytes::from_static(b"a")));
        let b = hash_payload(&Payload::Command(Bytes::from_static(b"b")));
        let noop = hash_payload(&Payload::Noop);
        assert_ne!(a, b);
        assert_ne!(a, noop);
        assert_eq!(
            hash_payload(&Payload::Command(Bytes::from_static(b"a"))),
            a,
            "hash must be deterministic"
        );
    }
}
