//! # escape-cluster
//!
//! The experiment harness: wires `escape-core` consensus engines into the
//! `escape-simnet` discrete-event network, injects faults, measures
//! elections, and checks safety invariants while running.
//!
//! Layers:
//!
//! * [`cluster`] — [`SimCluster`]: N nodes + network +
//!   an observation log; crash/restart/partition/propose/run-until APIs.
//! * [`campaign`] — deterministic fault-injection campaigns: composable
//!   [`FaultPlan`](campaign::FaultPlan)s, a seed-sweeping scenario matrix,
//!   reproducer shrinking, and the regression seed corpus.
//! * [`observer`] — turns the observation log into the paper's metrics
//!   (detection period, election period, phases with competing candidates).
//! * [`trial`] — the leader-failure trial behind Figs. 3, 4, 9, 11.
//! * [`scenario`] — deterministic scripts (Fig. 2 split vote, Fig. 10 forced
//!   competing-candidate phases).
//! * [`experiments`] — parameter sweeps that regenerate every figure.
//! * [`invariants`] — runtime safety checking (Election Safety, commit
//!   safety, Theorem 3 configuration uniqueness).
//! * [`stats`] — means/quantiles/CDFs for experiment output.
//!
//! ## Example: measure one ESCAPE leader election
//!
//! ```
//! use escape_cluster::cluster::{ClusterConfig, Protocol};
//! use escape_cluster::trial::{run_leader_failure_trial, TrialConfig};
//!
//! let cluster = ClusterConfig::paper_network(5, Protocol::escape_paper_default(), 42);
//! let outcome = run_leader_failure_trial(&TrialConfig::election_only(cluster));
//! let m = outcome.measurement.expect("new leader");
//! println!("detection {} + election {} = {}", m.detection(), m.election(), m.total());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod adapter;
pub mod campaign;
pub mod cluster;
pub mod experiments;
pub mod invariants;
pub mod observer;
pub mod scenario;
pub mod stats;
pub mod trial;

pub use cluster::{ClusterConfig, ObservedEvent, Protocol, SimCluster};
pub use observer::{measure_election, ElectionMeasurement};
pub use stats::{Cdf, Summary};
pub use trial::{run_leader_failure_trial, run_trials, TrialConfig, TrialOutcome};
