//! Deterministic fault-injection campaigns: composable fault plans, a
//! seed-driven scenario matrix explorer, and reproducer shrinking.
//!
//! A campaign composes the workspace's fault models — network chaos
//! (duplication/reordering), loss, asymmetric one-way cuts, per-node
//! clock skew, lying fsyncs, transient IO errors, disk-full fail-stops,
//! and torn WAL tails — into a declarative [`FaultPlan`], then sweeps
//! seeds through [`run_trial`]: one fully deterministic [`SimCluster`]
//! run per `(plan, seed)` pair, checked against the safety invariants,
//! liveness, a committed workload, and (when the plan kills the leader)
//! the failover-timeline phase bounds from the typed event streams.
//!
//! Every failing trial yields a self-contained [`Reproducer`] — the seed
//! plus the plan, greedily [`shrink`]-ed to a minimal failing subset of
//! atoms — so a nightly sweep's output pastes straight into a regression
//! corpus (`corpus/campaign.txt`, replayed as a tier-1 test).
//!
//! Everything is derived from the one seed: the network stream, each
//! node's storage-fault stream, the skew offsets, and the cut endpoints,
//! so the same `(scenario, seed)` line replays byte-for-byte.

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;

use escape_core::rand::{Rng64, Xoshiro256};
use escape_core::storage::{RecoveredState, Storage};
use escape_core::time::Duration;
use escape_core::types::{ServerId, Term};
use escape_obs::{Observer, PhaseBounds};
use escape_simnet::latency::LatencyModel;
use escape_simnet::loss::{ChaosModel, LossModel};
use escape_simnet::skew::ClockSkew;
use escape_storage::{tear_wal_tail, FaultSpec, FaultStats, FaultyStorage, WalOptions, WalStorage};

use crate::cluster::{ClusterConfig, ObservedEvent, Protocol, SimCluster, StorageHarness};

/// Salt separating the campaign's own draws (skew, victims, cut
/// endpoints) from the network stream, which uses the raw seed.
const CAMPAIGN_SALT: u64 = 0xC0FF_EE00_D15E_A5E5;

/// One composable fault. A [`FaultPlan`] is a set of these; each atom is
/// independently removable, which is what makes greedy shrinking work.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultAtom {
    /// Crash the leader once the cluster has settled.
    KillLeader,
    /// Restart the killed node after the successor takes over (requires
    /// [`FaultAtom::KillLeader`]; a no-op without it).
    RestartKilled,
    /// Frame duplication and reordering on every link.
    Chaos {
        /// Probability a delivered frame arrives twice.
        duplicate_p: f64,
        /// Probability a delivered frame picks up extra delay.
        reorder_p: f64,
        /// Maximum extra delay for a reordered frame.
        reorder_span: Duration,
    },
    /// Independent per-frame loss.
    Loss(f64),
    /// Sever one direction of one link between two random followers.
    OneWayCut,
    /// Give every node a random clock offset and drift.
    Skew {
        /// Largest absolute offset a node can start with.
        max_offset: Duration,
        /// Largest absolute drift in parts per million.
        max_drift_ppm: i64,
    },
    /// Each fsync lies (acks without flushing) with this probability.
    LyingFsync(f64),
    /// Each persist reports a survivable IO error with this probability.
    TransientIo(f64),
    /// One random node's disk fills after this many persist operations;
    /// the node must fail-stop.
    DiskFull(u64),
    /// Crashes tear a seeded number of bytes off the victim's newest WAL
    /// segment, so restarts exercise torn-tail recovery.
    TornTail,
}

impl fmt::Display for FaultAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultAtom::KillLeader => write!(f, "kill-leader"),
            FaultAtom::RestartKilled => write!(f, "restart-killed"),
            FaultAtom::Chaos {
                duplicate_p,
                reorder_p,
                reorder_span,
            } => write!(
                f,
                "chaos(dup={duplicate_p:.2},reorder={reorder_p:.2},span={}ms)",
                reorder_span.as_millis()
            ),
            FaultAtom::Loss(p) => write!(f, "loss({p:.2})"),
            FaultAtom::OneWayCut => write!(f, "one-way-cut"),
            FaultAtom::Skew {
                max_offset,
                max_drift_ppm,
            } => write!(
                f,
                "skew(±{}ms,±{max_drift_ppm}ppm)",
                max_offset.as_millis()
            ),
            FaultAtom::LyingFsync(p) => write!(f, "lying-fsync({p:.2})"),
            FaultAtom::TransientIo(p) => write!(f, "transient-io({p:.2})"),
            FaultAtom::DiskFull(after) => write!(f, "disk-full({after})"),
            FaultAtom::TornTail => write!(f, "torn-tail"),
        }
    }
}

/// A declarative set of faults to inflict on one trial.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// The atoms, applied together.
    pub atoms: Vec<FaultAtom>,
}

impl FaultPlan {
    /// A plan with no faults (the trial still checks the base invariants).
    pub fn quiet() -> Self {
        FaultPlan { atoms: Vec::new() }
    }

    /// `true` if any atom needs real (fault-injecting) storage under the
    /// nodes.
    pub fn needs_storage(&self) -> bool {
        self.atoms.iter().any(|a| {
            matches!(
                a,
                FaultAtom::LyingFsync(_)
                    | FaultAtom::TransientIo(_)
                    | FaultAtom::DiskFull(_)
                    | FaultAtom::TornTail
            )
        })
    }

    fn has(&self, probe: impl Fn(&FaultAtom) -> bool) -> bool {
        self.atoms.iter().any(probe)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "quiet");
        }
        for (i, atom) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, "+")?;
            }
            write!(f, "{atom}")?;
        }
        Ok(())
    }
}

/// The named scenario matrix: deterministic generators, so a corpus line
/// `scenario seed` fully identifies a trial.
pub const SCENARIO_NAMES: &[&str] = &[
    "quiet",
    "baseline",
    "chaos-net",
    "lossy-net",
    "one-way-cut",
    "split-clocks",
    "lying-disk",
    "flaky-disk",
    "disk-full",
    "disk-full-failover",
    "kitchen-sink",
];

/// The plan a scenario name denotes, or `None` for an unknown name.
pub fn scenario_plan(name: &str) -> Option<FaultPlan> {
    let chaos = FaultAtom::Chaos {
        duplicate_p: 0.15,
        reorder_p: 0.25,
        reorder_span: Duration::from_millis(20),
    };
    let skew = FaultAtom::Skew {
        max_offset: Duration::from_millis(5),
        max_drift_ppm: 200,
    };
    let atoms = match name {
        "quiet" => vec![],
        "baseline" => vec![FaultAtom::KillLeader],
        "chaos-net" => vec![FaultAtom::KillLeader, chaos],
        "lossy-net" => vec![FaultAtom::KillLeader, FaultAtom::Loss(0.05)],
        "one-way-cut" => vec![FaultAtom::KillLeader, FaultAtom::OneWayCut],
        "split-clocks" => vec![FaultAtom::KillLeader, skew],
        "lying-disk" => vec![
            FaultAtom::KillLeader,
            FaultAtom::LyingFsync(0.3),
            FaultAtom::TornTail,
            FaultAtom::RestartKilled,
        ],
        "flaky-disk" => vec![FaultAtom::KillLeader, FaultAtom::TransientIo(0.2)],
        "disk-full" => vec![FaultAtom::DiskFull(4)],
        // The PR 9 residual case: a leader kill *measured for bounds*
        // while some node's disk fills and fail-stops it nearby. The
        // timeline is keyed by the killed leader's own crash event, so
        // the victim's extra crash cannot garble the phase measurements.
        "disk-full-failover" => vec![FaultAtom::KillLeader, FaultAtom::DiskFull(4)],
        "kitchen-sink" => vec![
            FaultAtom::KillLeader,
            chaos,
            FaultAtom::OneWayCut,
            skew,
            FaultAtom::LyingFsync(0.25),
            FaultAtom::TornTail,
            FaultAtom::RestartKilled,
        ],
        _ => return None,
    };
    Some(FaultPlan { atoms })
}

/// Knobs for one trial.
#[derive(Clone, Debug)]
pub struct TrialOptions {
    /// Failover phase bounds, checked whenever the plan kills the leader
    /// — keyed on that leader's own crash event, so concurrent
    /// fault-induced crashes (disk-full fail-stops) don't muddy it.
    pub bounds: PhaseBounds,
    /// Where fault-injecting storage puts node directories; `None` uses
    /// a fresh temp directory that is removed when the trial ends.
    pub storage_root: Option<PathBuf>,
}

impl Default for TrialOptions {
    fn default() -> Self {
        TrialOptions {
            // Generous campaign bound: failover under compounded faults
            // must still complete within a second per phase (the clean
            // reflex bound is 200 ms; see `PhaseBounds::reflex_200ms`).
            bounds: PhaseBounds {
                detect_micros: 1_000_000,
                campaign_micros: 1_000_000,
                elect_micros: 1_000_000,
                commit_micros: 1_000_000,
            },
            storage_root: None,
        }
    }
}

/// What one `(plan, seed)` trial produced.
#[derive(Clone, Debug)]
pub struct TrialOutcome {
    /// The trial's seed.
    pub seed: u64,
    /// Invariant violations, empty when the trial passed.
    pub failures: Vec<String>,
    /// Concatenated per-node typed event logs — byte-identical across
    /// replays of the same `(plan, seed)`.
    pub digest: String,
}

impl TrialOutcome {
    /// `true` when every invariant held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// A self-contained recipe for replaying one failure.
#[derive(Clone, Debug)]
pub struct Reproducer {
    /// The scenario the failing seed came from.
    pub scenario: String,
    /// The seed.
    pub seed: u64,
    /// The minimal failing plan ([`shrink`]'s fixed point).
    pub plan: FaultPlan,
    /// What failed under the shrunken plan.
    pub failures: Vec<String>,
}

impl fmt::Display for Reproducer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "scenario {} seed {} shrinks to [{}]",
            self.scenario, self.seed, self.plan
        )?;
        for failure in &self.failures {
            writeln!(f, "  - {failure}")?;
        }
        write!(
            f,
            "  replay: cargo run -p escape-cluster --bin campaign -- --scenario {} --seed {}",
            self.scenario, self.seed
        )
    }
}

/// What a seed sweep found.
#[derive(Clone, Debug, Default)]
pub struct SweepReport {
    /// Trials run.
    pub trials: u64,
    /// One shrunken reproducer per failing seed.
    pub failures: Vec<Reproducer>,
}

impl SweepReport {
    /// `true` when every seed passed.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

// ---- the storage harness ----

/// [`StorageHarness`] for campaigns: every node gets a [`FaultyStorage`]
/// over a real WAL directory, with per-node fault specs and a shared
/// virtual clock, all seeded from the campaign stream.
#[derive(Debug)]
pub struct CampaignStorage {
    root: PathBuf,
    default_spec: FaultSpec,
    overrides: BTreeMap<ServerId, FaultSpec>,
    torn_tail: bool,
    rng: Xoshiro256,
    stats: BTreeMap<ServerId, Arc<FaultStats>>,
    clock: Arc<AtomicU64>,
}

impl CampaignStorage {
    /// A harness rooted at `root` (one subdirectory per node), injecting
    /// `spec` faults on every node, tearing WAL tails at crash time when
    /// `torn_tail`, all deterministically from `seed`.
    pub fn new(root: PathBuf, spec: FaultSpec, torn_tail: bool, seed: u64) -> Self {
        CampaignStorage {
            root,
            default_spec: spec,
            overrides: BTreeMap::new(),
            torn_tail,
            rng: Xoshiro256::seed_from(seed),
            stats: BTreeMap::new(),
            clock: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Overrides the fault spec for one node (e.g. a single disk-full
    /// victim).
    pub fn set_spec_for(&mut self, id: ServerId, spec: FaultSpec) {
        self.overrides.insert(id, spec);
    }

    /// The fault counters for `id`, once its storage has been opened.
    pub fn stats_for(&self, id: ServerId) -> Option<Arc<FaultStats>> {
        self.stats.get(&id).map(Arc::clone)
    }

    fn dir(&self, id: ServerId) -> PathBuf {
        self.root.join(format!("node-{}", id.get()))
    }
}

impl StorageHarness for CampaignStorage {
    fn open(
        &mut self,
        id: ServerId,
        observer: Arc<dyn Observer>,
        at_micros: u64,
    ) -> io::Result<(Box<dyn Storage>, RecoveredState)> {
        let dir = self.dir(id);
        std::fs::create_dir_all(&dir)?;
        let (inner, state) =
            WalStorage::open_observed(&dir, WalOptions::default(), observer.as_ref(), at_micros)?;
        let spec = self
            .overrides
            .get(&id)
            .copied()
            .unwrap_or(self.default_spec);
        // Each open (including reopens after a crash) forks a fresh
        // stream: the parent RNG advances, so the reincarnation's fault
        // schedule differs from its predecessor's but is still a pure
        // function of the campaign seed.
        let fault_rng = self.rng.fork(id.get() as u64);
        let storage = FaultyStorage::new(inner, spec, fault_rng, observer, Arc::clone(&self.clock));
        self.stats.insert(id, storage.stats());
        Ok((Box::new(storage), state))
    }

    fn on_crash(&mut self, id: ServerId) {
        if self.torn_tail {
            // A crash that outran the disk: chop a seeded number of
            // bytes off the newest segment. Nothing to tear (empty log)
            // is fine; IO errors here mean the trial directory vanished,
            // which the restart's reopen will surface anyway.
            let _ = tear_wal_tail(&self.dir(id), &mut self.rng);
        }
    }

    fn fail_stop(&self, id: ServerId) -> bool {
        self.stats
            .get(&id)
            .is_some_and(|stats| stats.is_disk_full())
    }

    fn tick(&mut self, at_micros: u64) {
        self.clock.store(at_micros, Ordering::Relaxed);
    }
}

// ---- the trial ----

/// The reflex-scale cluster every trial runs: LAN latencies and Eq. 1
/// parameters small enough that clean failovers fit the paper's 200 ms
/// reflex bound, so the campaign bounds measure fault impact, not WAN
/// latency.
fn trial_config(seed: u64, loss: LossModel) -> ClusterConfig {
    ClusterConfig {
        n: 5,
        protocol: Protocol::Escape {
            base_time: Duration::from_millis(150),
            spacing: Duration::from_millis(50),
        },
        latency: LatencyModel::Uniform {
            min: Duration::from_millis(1),
            max: Duration::from_millis(5),
        },
        loss,
        seed,
        options: escape_core::engine::Options {
            heartbeat_interval: Duration::from_millis(50),
            ..escape_core::engine::Options::default()
        },
        check_safety: false,
    }
}

fn fresh_root(seed: u64) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "escape-campaign-{}-{seed:016x}-{n}",
        std::process::id()
    ))
}

/// Proposes through whoever currently leads, waiting out leader changes
/// (a disk-full leader fail-stops mid-workload and a successor takes
/// over). Returns the accepted index, or `None` if no leader ever took
/// the command.
fn propose_with_retry(cluster: &mut SimCluster, command: Bytes, retries: u32) -> Option<u64> {
    for _ in 0..=retries {
        match cluster.propose(command.clone()) {
            Ok(index) => return Some(index.get()),
            Err(_) => cluster.run_for(Duration::from_millis(500)),
        }
    }
    None
}

/// Runs one deterministic trial of `plan` at `seed` and checks every
/// invariant: liveness (a leader exists, a successor gets elected),
/// safety (election + commit safety via [`crate::invariants`]), a
/// committed workload, fail-stop semantics for disk-full victims, and —
/// when the plan kills the leader — the failover-timeline phase bounds
/// reconstructed from the typed event streams.
pub fn run_trial(plan: &FaultPlan, seed: u64, opts: &TrialOptions) -> TrialOutcome {
    let mut failures: Vec<String> = Vec::new();
    let mut rng = Xoshiro256::seed_from(seed ^ CAMPAIGN_SALT);

    // Atom → model translation. Draw order is fixed (skew, then victim,
    // then cut endpoints) so every draw is a pure function of the seed.
    let mut loss = LossModel::None;
    let mut chaos = ChaosModel::none();
    let mut spec = FaultSpec::none();
    let mut torn_tail = false;
    let mut disk_full_after: Option<u64> = None;
    let kill_leader = plan.has(|a| matches!(a, FaultAtom::KillLeader));
    let restart_killed = plan.has(|a| matches!(a, FaultAtom::RestartKilled));
    let one_way_cut = plan.has(|a| matches!(a, FaultAtom::OneWayCut));
    for atom in &plan.atoms {
        match atom {
            FaultAtom::Loss(p) => loss = LossModel::Bernoulli(*p),
            FaultAtom::Chaos {
                duplicate_p,
                reorder_p,
                reorder_span,
            } => {
                chaos = ChaosModel {
                    duplicate_p: *duplicate_p,
                    reorder_p: *reorder_p,
                    reorder_span: *reorder_span,
                }
            }
            FaultAtom::LyingFsync(p) => spec.lying_fsync_p = *p,
            FaultAtom::TransientIo(p) => spec.transient_io_p = *p,
            FaultAtom::DiskFull(after) => disk_full_after = Some(*after),
            FaultAtom::TornTail => torn_tail = true,
            FaultAtom::KillLeader | FaultAtom::RestartKilled | FaultAtom::OneWayCut => {}
            FaultAtom::Skew { .. } => {}
        }
    }

    let config = trial_config(seed, loss);
    let n = config.n;
    let ids: Vec<ServerId> = (1..=n as u32).map(ServerId::new).collect();

    // Clock skew draws happen before construction so they precede every
    // other campaign draw regardless of which atoms are present.
    let mut skew = ClockSkew::none();
    if let Some(FaultAtom::Skew {
        max_offset,
        max_drift_ppm,
    }) = plan
        .atoms
        .iter()
        .find(|a| matches!(a, FaultAtom::Skew { .. }))
    {
        let max_off = max_offset.as_micros();
        for id in &ids {
            let offset = rng.gen_range(0, 2 * max_off + 1) as i64 - max_off as i64;
            let drift =
                rng.gen_range(0, 2 * *max_drift_ppm as u64 + 1) as i64 - *max_drift_ppm;
            skew.set(*id, offset, drift);
        }
    }

    let disk_full_victim = disk_full_after.map(|after| {
        let victim = ids[rng.gen_range(0, n as u64) as usize];
        (victim, after)
    });

    let needs_storage = plan.needs_storage();
    let auto_root = needs_storage && opts.storage_root.is_none();
    let root = opts.storage_root.clone().unwrap_or_else(|| fresh_root(seed));

    let mut cluster = if needs_storage {
        let mut harness = CampaignStorage::new(root.clone(), spec, torn_tail, seed ^ CAMPAIGN_SALT);
        if let Some((victim, after)) = disk_full_victim {
            let mut victim_spec = spec;
            victim_spec.disk_full_after = Some(after);
            harness.set_spec_for(victim, victim_spec);
        }
        match SimCluster::with_storage(config, Box::new(harness)) {
            Ok(cluster) => cluster,
            Err(error) => {
                return TrialOutcome {
                    seed,
                    failures: vec![format!("storage: failed to open trial dirs: {error}")],
                    digest: String::new(),
                }
            }
        }
    } else {
        SimCluster::new(config)
    };
    cluster.sim_mut().set_chaos(chaos);
    cluster.set_clock_skew(skew);

    // Phase 1: bootstrap (a liveness check in itself — no panic, a
    // leaderless cluster is a reportable failure).
    let horizon = cluster.now() + Duration::from_secs(300);
    let Some(_) = cluster.run_until_new_leader(Term::ZERO, horizon) else {
        failures.push("liveness: no initial leader within 5 virtual minutes".into());
        return finish_trial(seed, failures, &cluster, auto_root, &root);
    };
    cluster.run_until(cluster.now() + Duration::from_millis(500));

    // Phase 2: the cut, then the kill.
    if one_way_cut {
        if let Some(leader) = cluster.current_leader() {
            let followers: Vec<ServerId> = ids
                .iter()
                .copied()
                .filter(|id| *id != leader && cluster.is_alive(*id))
                .collect();
            if followers.len() >= 2 {
                let src = followers[rng.gen_range(0, followers.len() as u64) as usize];
                let rest: Vec<ServerId> =
                    followers.into_iter().filter(|id| *id != src).collect();
                let dst = rest[rng.gen_range(0, rest.len() as u64) as usize];
                cluster.sim_mut().partitions_mut().sever_one_way(src, dst);
            }
        }
    }

    let mut killed: Option<ServerId> = None;
    if kill_leader {
        // Under loss the leadership can be mid-handover at this exact
        // instant; give the cluster (bounded) time to show a live leader
        // before declaring the kill impossible.
        let mut patience = 0;
        while cluster.current_leader().is_none() && patience < 100 {
            cluster.run_for(Duration::from_millis(100));
            patience += 1;
        }
        match cluster.current_leader() {
            Some(leader) => {
                let old_term = cluster.node(leader).current_term();
                cluster.crash(leader);
                killed = Some(leader);
                let horizon = cluster.now() + Duration::from_secs(10);
                if cluster.run_until_new_leader(old_term, horizon).is_none() {
                    failures.push("liveness: no successor within 10 virtual seconds".into());
                }
                cluster.run_for(Duration::from_millis(500));
            }
            None => failures.push("liveness: leader vanished before the kill".into()),
        }
    }

    // Phase 3: failover timeline bounds, keyed on the killed leader's
    // own crash event — so a disk-full victim fail-stopping before or
    // after the kill cannot shift the anchor. (This check used to be
    // skipped outright for any plan carrying a disk-full atom, because
    // the reconstructor keyed off the most recent crash of *anyone*.)
    if failures.is_empty() {
        if let Some(victim) = killed {
            match cluster.failover_timeline_for(victim) {
                Ok(timeline) => {
                    if let Err(violations) = timeline.check_bounds(&opts.bounds) {
                        failures.push(format!("bounds: {violations}"));
                    }
                }
                Err(error) => failures.push(format!("timeline: {error:?}")),
            }
        }
    }

    // Phase 4: the killed node rejoins.
    if restart_killed {
        if let Some(node) = killed {
            cluster.restart(node);
            cluster.run_for(Duration::from_secs(1));
            if !cluster.is_alive(node) {
                failures.push(format!("restart: node {} did not stay up", node.get()));
            }
        }
    }

    // Phase 5: the cluster still commits real work under whatever faults
    // remain active. The invariant is "commit progress continues", not
    // "this exact index commits": a proposal accepted by a leader that
    // then loses leadership may legitimately never commit (Raft §8), so
    // only a cluster that stops committing altogether fails.
    let committed_before = max_commit(&cluster);
    let mut accepted = false;
    for i in 0..6u32 {
        let command = Bytes::from(format!("campaign-{seed}-{i}"));
        if propose_with_retry(&mut cluster, command, 6).is_some() {
            accepted = true;
        }
    }
    cluster.run_for(Duration::from_secs(2));
    if !accepted {
        failures.push("workload: no leader accepted a command".into());
    } else if max_commit(&cluster) <= committed_before {
        failures.push(format!(
            "workload: commit index stuck at {committed_before} despite accepted proposals"
        ));
    }

    // Phase 6: fail-stop semantics — a full disk must actually have
    // stopped its victim.
    if let Some((victim, _)) = disk_full_victim {
        if cluster.is_alive(victim) {
            failures.push(format!(
                "disk-full: node {} never fail-stopped",
                victim.get()
            ));
        }
    }

    // Phase 7: safety, always.
    if !cluster.safety().is_safe() {
        failures.push(format!("safety: {:?}", cluster.safety().violations()));
    }

    finish_trial(seed, failures, &cluster, auto_root, &root)
}

/// The highest commit index any node has reported so far.
fn max_commit(cluster: &SimCluster) -> u64 {
    cluster
        .events()
        .iter()
        .filter_map(|e| match e {
            ObservedEvent::Commit { index, .. } => Some(index.get()),
            _ => None,
        })
        .max()
        .unwrap_or(0)
}

fn finish_trial(
    seed: u64,
    failures: Vec<String>,
    cluster: &SimCluster,
    auto_root: bool,
    root: &Path,
) -> TrialOutcome {
    let digest = cluster
        .ids()
        .into_iter()
        .map(|id| {
            let mut out = format!("node {}\n", id.get());
            for timed in cluster.node_events(id) {
                timed.encode_line(&mut out);
            }
            out
        })
        .collect();
    if auto_root {
        // Best-effort cleanup of the auto-created temp directory.
        let _ = std::fs::remove_dir_all(root);
    }
    TrialOutcome {
        seed,
        failures,
        digest,
    }
}

/// Greedy delta-debugging: repeatedly drops any single atom whose
/// removal still reproduces the failure, until no atom is removable.
/// Deterministic, so the shrunken plan in a [`Reproducer`] replays.
pub fn shrink(plan: &FaultPlan, seed: u64, opts: &TrialOptions) -> FaultPlan {
    let mut atoms = plan.atoms.clone();
    loop {
        let mut removed = false;
        let mut i = 0;
        while i < atoms.len() {
            let mut candidate = atoms.clone();
            candidate.remove(i);
            let outcome = run_trial(
                &FaultPlan {
                    atoms: candidate.clone(),
                },
                seed,
                opts,
            );
            if outcome.passed() {
                i += 1;
            } else {
                atoms = candidate;
                removed = true;
            }
        }
        if !removed {
            break;
        }
    }
    FaultPlan { atoms }
}

/// Sweeps `seeds` through `plan`, shrinking every failure into a
/// [`Reproducer`]. `scenario` labels the reproducers (and their replay
/// command lines).
pub fn sweep(
    scenario: &str,
    plan: &FaultPlan,
    seeds: impl IntoIterator<Item = u64>,
    opts: &TrialOptions,
) -> SweepReport {
    let mut report = SweepReport::default();
    for seed in seeds {
        report.trials += 1;
        let outcome = run_trial(plan, seed, opts);
        if !outcome.passed() {
            let shrunk = shrink(plan, seed, opts);
            let failures = run_trial(&shrunk, seed, opts).failures;
            report.failures.push(Reproducer {
                scenario: scenario.to_string(),
                seed,
                plan: shrunk,
                failures,
            });
        }
    }
    report
}

/// One parsed `scenario seed` corpus line.
#[derive(Clone, Debug, PartialEq)]
pub struct CorpusEntry {
    /// Scenario name (must be in [`SCENARIO_NAMES`]).
    pub scenario: String,
    /// The seed to replay.
    pub seed: u64,
}

/// Parses a seed corpus: one `scenario seed` pair per line, `#` comments
/// and blank lines ignored.
///
/// # Errors
///
/// A message naming the offending line when a line is malformed or names
/// an unknown scenario.
pub fn parse_corpus(text: &str) -> Result<Vec<CorpusEntry>, String> {
    let mut entries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(scenario), Some(seed), None) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!("corpus line {}: want `scenario seed`", lineno + 1));
        };
        if scenario_plan(scenario).is_none() {
            return Err(format!(
                "corpus line {}: unknown scenario `{scenario}`",
                lineno + 1
            ));
        }
        let seed = seed
            .parse::<u64>()
            .map_err(|e| format!("corpus line {}: bad seed: {e}", lineno + 1))?;
        entries.push(CorpusEntry {
            scenario: scenario.to_string(),
            seed,
        });
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(name: &str) -> FaultPlan {
        scenario_plan(name).expect("known scenario")
    }

    /// The committed seed corpus replays clean — every scenario/seed pair
    /// that once mattered keeps passing (tier-1 regression gate).
    #[test]
    fn corpus_replays_clean() {
        let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus/campaign.txt");
        let text = std::fs::read_to_string(&path).expect("corpus file");
        let entries = parse_corpus(&text).expect("well-formed corpus");
        assert!(!entries.is_empty(), "corpus must not be empty");
        let opts = TrialOptions::default();
        for entry in entries {
            let outcome = run_trial(&plan(&entry.scenario), entry.seed, &opts);
            assert!(
                outcome.passed(),
                "corpus regression: scenario {} seed {} failed: {:?}",
                entry.scenario,
                entry.seed,
                outcome.failures
            );
        }
    }

    /// The tentpole acceptance: leader kill + lying fsync + asymmetric
    /// partition (plus chaos, skew, torn tails, and a rejoin) runs
    /// deterministically from its seed, passes every invariant, and
    /// stays within the campaign failover bounds.
    #[test]
    fn kitchen_sink_trial_is_deterministic_and_bounded() {
        let plan = plan("kitchen-sink");
        assert!(plan.needs_storage());
        let opts = TrialOptions::default();
        let first = run_trial(&plan, 42, &opts);
        assert!(first.passed(), "failures: {:?}", first.failures);
        let second = run_trial(&plan, 42, &opts);
        assert_eq!(
            first.digest, second.digest,
            "same (plan, seed) must replay byte-for-byte"
        );
        assert!(!first.digest.is_empty());
        let other = run_trial(&plan, 43, &opts);
        assert_ne!(first.digest, other.digest, "different seeds must differ");
    }

    /// A deliberately broken invariant (impossible phase bounds) shrinks
    /// the whole kitchen sink down to the one atom that triggers the
    /// check: the leader kill.
    #[test]
    fn impossible_bound_shrinks_to_the_kill_alone() {
        let full = plan("kitchen-sink");
        let opts = TrialOptions {
            bounds: PhaseBounds {
                detect_micros: 0,
                campaign_micros: 0,
                elect_micros: 0,
                commit_micros: 0,
            },
            ..TrialOptions::default()
        };
        let outcome = run_trial(&full, 42, &opts);
        assert!(!outcome.passed(), "zero bounds must fail a real failover");
        let minimal = shrink(&full, 42, &opts);
        assert_eq!(
            minimal.atoms,
            vec![FaultAtom::KillLeader],
            "shrink must isolate the kill: got [{minimal}]"
        );
    }

    /// Disk-full fail-stop: the victim halts, the rest of the cluster
    /// keeps committing.
    #[test]
    fn disk_full_victim_fail_stops_and_cluster_survives() {
        let outcome = run_trial(&plan("disk-full"), 7, &TrialOptions::default());
        assert!(outcome.passed(), "failures: {:?}", outcome.failures);
        assert!(
            outcome.digest.contains("disk_full"),
            "the victim's event ring must carry the disk_full event"
        );
    }

    /// Regression (PR 9 residual): disk-full trials used to skip the
    /// failover-bound check entirely, because the victim's fail-stop
    /// crash confused most-recent-crash timeline keying. With the
    /// timeline keyed by the killed leader's own crash, the bound is
    /// enforced again: impossible (zero) bounds must fail the combined
    /// kill+disk-full plan — proving the check actually runs — while the
    /// default generous bounds pass it.
    #[test]
    fn disk_full_no_longer_skips_the_failover_bound() {
        let plan = plan("disk-full-failover");
        let zero = TrialOptions {
            bounds: PhaseBounds {
                detect_micros: 0,
                campaign_micros: 0,
                elect_micros: 0,
                commit_micros: 0,
            },
            ..TrialOptions::default()
        };
        let outcome = run_trial(&plan, 7, &zero);
        assert!(
            outcome
                .failures
                .iter()
                .any(|f| f.starts_with("bounds:") || f.starts_with("timeline:")),
            "zero bounds must trip the (re-enabled) failover check under \
             disk-full; failures: {:?}",
            outcome.failures
        );
        let outcome = run_trial(&plan, 7, &TrialOptions::default());
        assert!(outcome.passed(), "failures: {:?}", outcome.failures);
    }

    /// A quiet plan exercises the same pipeline with no faults — the
    /// guard that campaign plumbing itself never breaks a clean cluster.
    #[test]
    fn quiet_plan_passes() {
        let outcome = run_trial(&FaultPlan::quiet(), 1, &TrialOptions::default());
        assert!(outcome.passed(), "failures: {:?}", outcome.failures);
    }

    #[test]
    fn corpus_parser_accepts_comments_and_rejects_junk() {
        let ok = parse_corpus("# header\nbaseline 7\n\nkitchen-sink 42 # trailing\n").unwrap();
        assert_eq!(ok.len(), 2);
        assert_eq!(ok[0].scenario, "baseline");
        assert_eq!(ok[1].seed, 42);
        assert!(parse_corpus("nope 3").is_err());
        assert!(parse_corpus("baseline").is_err());
        assert!(parse_corpus("baseline twelve").is_err());
    }

    #[test]
    fn plans_render_compactly() {
        assert_eq!(FaultPlan::quiet().to_string(), "quiet");
        assert_eq!(plan("baseline").to_string(), "kill-leader");
        assert!(plan("lying-disk").to_string().contains("lying-fsync(0.30)"));
        for name in SCENARIO_NAMES {
            assert!(scenario_plan(name).is_some(), "{name} must resolve");
        }
    }
}
