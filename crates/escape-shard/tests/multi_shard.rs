//! Multi-shard TCP cluster tests: routing, redirects, and — the point of
//! sharding ESCAPE — failure isolation: killing one shard's leader must
//! not stall the other shards' client traffic while the victim shard
//! fails over.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

use bytes::Bytes;

use escape_core::statemachine::StateMachine;
use escape_core::types::{GroupId, Role, ServerId};
use escape_kv::{KvCommand, KvResponse, KvStateMachine};
use escape_shard::{ShardError, ShardMap, ShardedNode};
use escape_transport::spec::ProtocolSpec;
use escape_transport::tcp::loopback_listeners;

fn spawn_cluster(
    servers: usize,
    shards: usize,
    addrs: &HashMap<ServerId, SocketAddr>,
    listeners: &HashMap<ServerId, TcpListener>,
) -> Vec<ShardedNode> {
    (1..=servers as u32)
        .map(|i| {
            let id = ServerId::new(i);
            ShardedNode::spawn(
                id,
                listeners[&id].try_clone().expect("clone listener"),
                addrs.clone(),
                ProtocolSpec::escape_local(),
                0x5AD,
                ShardMap::uniform(shards),
                |_group| Box::new(KvStateMachine::new()) as Box<dyn StateMachine>,
                None,
            )
        })
        .collect()
}

/// The index (into `nodes`) of `group`'s current leader, if any.
fn leader_of(nodes: &[Option<ShardedNode>], group: GroupId) -> Option<usize> {
    nodes.iter().position(|n| {
        n.as_ref()
            .and_then(|n| n.status(group))
            .is_some_and(|s| s.role == Role::Leader)
    })
}

fn wait_for_all_leaders(
    nodes: &[Option<ShardedNode>],
    groups: &[GroupId],
    timeout: Duration,
) -> HashMap<GroupId, usize> {
    let deadline = Instant::now() + timeout;
    loop {
        let leaders: HashMap<GroupId, usize> = groups
            .iter()
            .filter_map(|g| leader_of(nodes, *g).map(|i| (*g, i)))
            .collect();
        if leaders.len() == groups.len() {
            return leaders;
        }
        assert!(
            Instant::now() < deadline,
            "not every group elected within {timeout:?} (got {leaders:?})"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Put through the given server; the key must route to `group` there.
fn put(node: &ShardedNode, group: GroupId, key: &str, value: &[u8]) -> Result<(), ShardError> {
    let cmd = KvCommand::Put {
        key: key.to_string(),
        value: Bytes::copy_from_slice(value),
    };
    let index = node.propose_to(group, key.as_bytes(), cmd.encode())?;
    let raw = node.await_applied(group, index)?;
    assert_eq!(KvResponse::decode(&raw).unwrap(), KvResponse::Ok);
    Ok(())
}

/// Keys that route to `group` under `map`, lazily generated.
fn keys_for(map: &ShardMap, group: GroupId, count: usize) -> Vec<String> {
    (0u64..)
        .map(|i| format!("key-{i}"))
        .filter(|k| map.owner(k.as_bytes()) == group)
        .take(count)
        .collect()
}

#[test]
fn commands_route_and_redirect_over_tcp() {
    let (addrs, listeners) = loopback_listeners(3);
    let nodes: Vec<Option<ShardedNode>> = spawn_cluster(3, 3, &addrs, &listeners)
        .into_iter()
        .map(Some)
        .collect();
    let groups: Vec<GroupId> = nodes[0].as_ref().unwrap().map().groups().collect();
    let leaders = wait_for_all_leaders(&nodes, &groups, Duration::from_secs(10));

    // Correctly routed writes land.
    for group in &groups {
        let node = nodes[leaders[group]].as_ref().unwrap();
        for key in keys_for(node.map(), *group, 2) {
            put(node, *group, &key, b"routed").expect("routed write commits");
        }
    }

    // A misrouted command gets a redirect naming the right group.
    let any = nodes[0].as_ref().unwrap();
    let key = &keys_for(any.map(), groups[0], 1)[0];
    let wrong = groups[1];
    let err = any
        .propose_to(wrong, key.as_bytes(), KvCommand::Get { key: key.clone() }.encode())
        .expect_err("misroute must not reach the log");
    match err {
        ShardError::Redirect(redirect) => {
            assert_eq!(redirect.owner, groups[0]);
            assert_eq!(redirect.asked, wrong);
            assert_eq!(redirect.map_version, any.map().version());
        }
        other => panic!("expected a redirect, got {other:?}"),
    }

    for node in nodes.into_iter().flatten() {
        node.shutdown();
    }
}

/// The failure-isolation satellite: ≥3 shards, kill the server leading
/// one shard, and the other shards' client traffic must keep committing
/// — every write completing promptly — while ESCAPE fails the victim
/// shard over.
#[test]
fn killing_one_shards_leader_does_not_stall_the_others() {
    let shards = 4;
    let (addrs, listeners) = loopback_listeners(3);
    let mut nodes: Vec<Option<ShardedNode>> = spawn_cluster(3, shards, &addrs, &listeners)
        .into_iter()
        .map(Some)
        .collect();
    let groups: Vec<GroupId> = nodes[0].as_ref().unwrap().map().groups().collect();
    let leaders = wait_for_all_leaders(&nodes, &groups, Duration::from_secs(10));

    // Boot-priority rotation must have spread leadership: pick the victim
    // (group 0's leader server) and the groups led elsewhere.
    let victim_group = groups[0];
    let victim_server = leaders[&victim_group];
    let unaffected: Vec<GroupId> = groups
        .iter()
        .copied()
        .filter(|g| leaders[g] != victim_server)
        .collect();
    assert!(
        !unaffected.is_empty(),
        "leader rotation must place some group's leader off the victim server"
    );

    // Warm up: one write per unaffected group through its leader.
    for group in &unaffected {
        let node = nodes[leaders[group]].as_ref().unwrap();
        let key = &keys_for(node.map(), *group, 1)[0];
        put(node, *group, key, b"pre-kill").expect("pre-kill write");
    }

    nodes[victim_server].take().unwrap().kill();
    let killed_at = Instant::now();

    // Drive traffic on the unaffected shards for the whole failover
    // window (and at least 600 ms). Every write must succeed, promptly —
    // an election on the victim shard must not be visible here.
    let mut writes = 0usize;
    let mut slowest = Duration::ZERO;
    loop {
        for group in &unaffected {
            let node = nodes[leaders[group]].as_ref().unwrap();
            // Distinct keys per round, pinned to this (undisturbed) group.
            let key = keys_for(node.map(), *group, writes + 1)
                .pop()
                .expect("key for group");
            let started = Instant::now();
            let result = put(node, *group, &key, b"live");
            let took = started.elapsed();
            slowest = slowest.max(took);
            assert!(
                result.is_ok(),
                "write to unaffected {group} failed during victim failover: {result:?}"
            );
            assert!(
                took < Duration::from_secs(2),
                "write to unaffected {group} stalled for {took:?} during failover"
            );
            writes += 1;
        }
        let victim_recovered = leader_of(&nodes, victim_group).is_some();
        if victim_recovered && killed_at.elapsed() > Duration::from_millis(600) {
            break;
        }
        assert!(
            killed_at.elapsed() < Duration::from_secs(20),
            "victim shard never failed over"
        );
    }
    assert!(writes >= unaffected.len() * 2, "too few writes to call it traffic");

    // And the victim shard is healthy again: a write through its new
    // leader commits.
    let new_leader = leader_of(&nodes, victim_group).expect("victim shard re-elected");
    assert_ne!(new_leader, victim_server);
    let node = nodes[new_leader].as_ref().unwrap();
    let key = keys_for(node.map(), victim_group, 1).pop().unwrap();
    put(node, victim_group, &key, b"post-failover").expect("victim shard writes again");

    println!(
        "{writes} writes on {} unaffected shard(s) during failover; slowest {slowest:?}",
        unaffected.len()
    );

    for node in nodes.into_iter().flatten() {
        node.shutdown();
    }
}

/// Per-shard batching: one `propose_batch` call with keys spanning every
/// shard routes each command to its owning group, coalesces per group,
/// and reports per-command outcomes in input order.
#[test]
fn propose_batch_routes_and_batches_per_shard() {
    let servers = 3;
    let shards = 3;
    let (addrs, listeners) = loopback_listeners(servers);
    let nodes: Vec<Option<ShardedNode>> =
        spawn_cluster(servers, shards, &addrs, &listeners)
            .into_iter()
            .map(Some)
            .collect();
    let groups: Vec<GroupId> = nodes[0].as_ref().unwrap().map().groups().collect();
    let leaders = wait_for_all_leaders(&nodes, &groups, Duration::from_secs(15));

    // Drive the batch through one server; it leads at least one group
    // (boot-priority rotation spreads the leaders).
    let server_index = *leaders.values().next().unwrap();
    let server = nodes[server_index].as_ref().unwrap();
    let led: Vec<GroupId> = groups
        .iter()
        .copied()
        .filter(|g| leaders[g] == server_index)
        .collect();
    assert!(!led.is_empty());

    let items: Vec<(Bytes, Bytes)> = (0..90)
        .map(|i| {
            let key = format!("batch-key-{i}");
            let cmd = KvCommand::Put {
                key: key.clone(),
                value: Bytes::from(format!("v{i}")),
            };
            (Bytes::from(key), cmd.encode())
        })
        .collect();
    let expected_groups: Vec<GroupId> = items
        .iter()
        .map(|(key, _)| server.route(key))
        .collect();
    let outcomes = server.propose_batch(items);
    assert_eq!(outcomes.len(), 90);

    let mut accepted: HashMap<GroupId, Vec<escape_core::types::LogIndex>> = HashMap::new();
    for (i, outcome) in outcomes.iter().enumerate() {
        let expected = expected_groups[i];
        match outcome {
            Ok((group, index)) => {
                assert_eq!(*group, expected, "item {i} committed in the wrong shard");
                assert!(
                    led.contains(group),
                    "only locally led shards can accept here"
                );
                accepted.entry(*group).or_default().push(*index);
            }
            Err(ShardError::NotLeader { .. }) => {
                assert!(
                    !led.contains(&expected),
                    "item {i}: a locally led shard must not refuse"
                );
            }
            Err(other) => panic!("item {i}: unexpected outcome {other:?}"),
        }
    }
    // Every locally led shard accepted its share, at increasing indexes,
    // and applied through to the batch tail.
    for group in &led {
        let indexes = accepted.get(group).unwrap_or_else(|| {
            panic!("led shard {group} accepted nothing")
        });
        assert!(indexes.windows(2).all(|p| p[1] > p[0]), "indexes must increase");
        let last = *indexes.last().unwrap();
        server
            .await_applied(*group, last)
            .expect("batched tail must apply");
    }

    for node in nodes.into_iter().flatten() {
        node.shutdown();
    }
}

/// The observability satellite: publishing one server's per-group engine
/// metrics yields distinct per-group label sets in the registry, and the
/// registry's cross-group histogram aggregation merges them — the
/// merged count equals the sum of the per-group counts.
#[test]
fn published_group_histograms_merge_across_groups() {
    use escape_obs::{Labels, Registry};

    let shards = 3;
    let (addrs, listeners) = loopback_listeners(3);
    let nodes: Vec<Option<ShardedNode>> = spawn_cluster(3, shards, &addrs, &listeners)
        .into_iter()
        .map(Some)
        .collect();
    let groups: Vec<GroupId> = nodes[0].as_ref().unwrap().map().groups().collect();
    let leaders = wait_for_all_leaders(&nodes, &groups, Duration::from_secs(10));

    // Commit a few writes into every group through its leader so each
    // group's propose-batch histogram has samples.
    for group in &groups {
        let node = nodes[leaders[group]].as_ref().unwrap();
        for key in keys_for(node.map(), *group, 3) {
            put(node, *group, &key, b"observed").expect("write commits");
        }
    }

    for (server, node) in nodes.iter().enumerate() {
        let node = node.as_ref().unwrap();
        let registry = Registry::new();
        node.publish_metrics(&registry);

        // One label set per hosted group, each retaining its identity.
        let mut per_group_total = 0u64;
        for group in &groups {
            let labels = Labels::new()
                .with("node", node.id().get())
                .with("group", group.get());
            let batches = registry
                .counter_value("escape_propose_batches_total", &labels)
                .unwrap_or_else(|| {
                    panic!("server {server}: group {group} published no counter")
                });
            per_group_total += batches;
        }

        // The cross-group merge must account for every group's samples.
        let merged = registry
            .aggregate_histogram("escape_propose_batch_size")
            .expect("homogeneous histograms must merge");
        assert_eq!(
            merged.count, per_group_total,
            "server {server}: merged histogram count must equal the \
             sum of per-group batch counts"
        );
        // The leaders committed writes, so at least one group sampled.
        if leaders.values().any(|l| *l == server) {
            assert!(merged.count > 0, "server {server} led a group yet saw no batches");
        }

        // The exposition renders every group's series distinctly.
        let text = registry.render();
        for group in &groups {
            let needle = format!("group=\"{}\"", group.get());
            assert!(
                text.contains(&needle),
                "server {server}: render lacks {needle}"
            );
        }
    }

    for node in nodes.into_iter().flatten() {
        node.shutdown();
    }
}
