//! [`ShardedNode`]: one process hosting every consensus group of a
//! sharded deployment — N independent `escape-core` engines multiplexed
//! over a single TCP mesh and persisted under per-group subdirectories.
//!
//! Each group is a full ESCAPE instance: its own log, its own leader, its
//! own prepared-leader pool, its own election timers. The node supplies
//! the shared plumbing — one listener, one outbound connection per peer
//! (frames carry the [`GroupId`] so receivers demultiplex), one data
//! directory with a `group-<g>/` WAL+snapshot subtree per group — and the
//! [`Router`] that turns client keys into group addresses.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{bounded, Sender};

use escape_core::engine::{Node, ProposeError};
use escape_core::statemachine::StateMachine;
use escape_core::storage::Storage;
use escape_core::types::{GroupId, LogIndex, ServerId};
use escape_storage::WalStorage;
use escape_transport::runtime::{node_loop, NodeInput, NodeStatus};
use escape_transport::service::{ClientRouter, ClientService, RouteVerdict};
use escape_transport::spec::ProtocolSpec;
use escape_transport::tcp::{spawn_acceptor, GroupOutbound, GroupRoutes, StorageHook, TcpMesh};
use escape_transport::RuntimeClock;
use escape_wire::WireShardMap;

use crate::map::ShardMap;
use crate::router::{Redirect, Router};

/// How long client-facing helpers wait for the group thread to answer.
const REPLY_TIMEOUT: Duration = Duration::from_secs(2);
/// How long [`ShardedNode::await_applied`] waits for replication.
const APPLY_TIMEOUT: Duration = Duration::from_secs(5);

/// Why a sharded command did not produce a log index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardError {
    /// The command was addressed to a group that does not own its key —
    /// including a group that is not in the map at all (the redirect
    /// names the real owner and the map version either way).
    Redirect(Redirect),
    /// A group outside the hosted map was named where no key is
    /// available to redirect by ([`ShardedNode::await_applied`] /
    /// [`ShardedNode::inbox`]-driven paths; `propose_to` reports a
    /// [`ShardError::Redirect`] instead).
    UnknownGroup(GroupId),
    /// The owning group's engine on this server is not its leader.
    NotLeader {
        /// Where to retry, if known.
        hint: Option<ServerId>,
    },
    /// The group thread is gone or did not answer in time.
    Unavailable,
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Redirect(r) => write!(f, "misrouted: {r}"),
            ShardError::UnknownGroup(g) => write!(f, "group {g} is not in the shard map"),
            ShardError::NotLeader { hint: Some(l) } => {
                write!(f, "not the group leader; try {l}")
            }
            ShardError::NotLeader { hint: None } => write!(f, "not the group leader"),
            ShardError::Unavailable => write!(f, "group unavailable"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<ProposeError> for ShardError {
    fn from(e: ProposeError) -> Self {
        match e {
            ProposeError::NotLeader { hint } => ShardError::NotLeader { hint },
        }
    }
}

/// The per-group data subdirectory under a sharded node's data root.
pub fn group_data_dir(root: &Path, group: GroupId) -> PathBuf {
    root.join(format!("group-{:08}", group.get()))
}

/// Optional plumbing for [`ShardedNode::spawn_with`]. `Default` is a
/// plain node — exactly what [`ShardedNode::spawn`] builds.
#[derive(Clone, Default)]
pub struct ShardSpawnOptions {
    /// Wraps each hosted group's freshly opened WAL before its engine
    /// takes ownership (fault injection under the real TCP stack); see
    /// [`StorageHook`].
    pub storage_hook: Option<StorageHook>,
    /// Answer `escape-wire` client connections (hello-framed) on the
    /// same listener the peer mesh uses, routed through this node's
    /// shard map.
    pub serve_clients: bool,
}

impl std::fmt::Debug for ShardSpawnOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardSpawnOptions")
            .field(
                "storage_hook",
                &self.storage_hook.as_ref().map(|_| "<hook>"),
            )
            .field("serve_clients", &self.serve_clients)
            .finish()
    }
}

/// The sharded node's [`ClientRouter`]: key ownership comes from the
/// shard map (misroutes answer with a redirect naming the owner and the
/// map version), and owned groups resolve to their engine inbox.
#[derive(Debug)]
struct ShardClientRouter {
    router: Router,
    inboxes: Vec<Sender<NodeInput>>,
}

impl ClientRouter for ShardClientRouter {
    fn route(&self, group: GroupId, key: &[u8]) -> RouteVerdict {
        match self.router.check(group, key) {
            Ok(owner) => match self.inboxes.get(owner.index()) {
                Some(inbox) => RouteVerdict::Local(inbox.clone()),
                None => RouteVerdict::Unknown,
            },
            Err(redirect) => RouteVerdict::Redirect {
                asked: redirect.asked,
                owner: redirect.owner,
                map_version: redirect.map_version,
            },
        }
    }

    fn map_snapshot(&self) -> WireShardMap {
        WireShardMap {
            version: self.router.map().version(),
            ranges: self.router.map().ranges().to_vec(),
        }
    }
}

/// One server of a sharded cluster: every consensus group's engine, one
/// shared TCP mesh, and the router for client commands.
///
/// Spawn one per server (same shard map everywhere); clients may talk to
/// any server, and misrouted or follower-addressed commands come back as
/// [`ShardError::Redirect`] / [`ShardError::NotLeader`] with enough
/// information to retry at the right place.
#[derive(Debug)]
pub struct ShardedNode {
    id: ServerId,
    my_addr: SocketAddr,
    router: Router,
    inboxes: Vec<Sender<NodeInput>>,
    mesh: Arc<TcpMesh>,
    stop_accepting: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ShardedNode {
    /// Boots server `id` hosting every group of `map`, accepting on the
    /// caller-bound `listener` (see
    /// [`loopback_listeners`](escape_transport::tcp::loopback_listeners)
    /// for why listeners are bound outside).
    ///
    /// `state_machine_for` builds each group's state machine. With a
    /// `data_dir`, each group recovers from and persists into its own
    /// `group-<g>/` subdirectory — recovery iterates the map's groups, so
    /// a restarted process rebuilds every shard it hosts.
    ///
    /// # Panics
    ///
    /// Panics if `addrs` lacks `id` or any group's data subdirectory
    /// cannot be opened/recovered (a node that cannot persist must not
    /// serve).
    #[allow(clippy::too_many_arguments)] // mirrors TcpNode::spawn + map/factory
    pub fn spawn(
        id: ServerId,
        listener: TcpListener,
        addrs: HashMap<ServerId, SocketAddr>,
        spec: ProtocolSpec,
        seed: u64,
        map: ShardMap,
        state_machine_for: impl FnMut(GroupId) -> Box<dyn StateMachine>,
        data_dir: Option<&Path>,
    ) -> Self {
        Self::spawn_with(
            id,
            listener,
            addrs,
            spec,
            seed,
            map,
            state_machine_for,
            data_dir,
            ShardSpawnOptions::default(),
        )
    }

    /// The fully general spawn: [`ShardedNode::spawn`] plus whatever
    /// [`ShardSpawnOptions`] enables — per-group storage fault injection
    /// and/or client serving on the peer listener.
    ///
    /// # Panics
    ///
    /// Same contract as [`ShardedNode::spawn`].
    #[allow(clippy::too_many_arguments)] // mirrors spawn + the options bundle
    pub fn spawn_with(
        id: ServerId,
        listener: TcpListener,
        addrs: HashMap<ServerId, SocketAddr>,
        spec: ProtocolSpec,
        seed: u64,
        map: ShardMap,
        mut state_machine_for: impl FnMut(GroupId) -> Box<dyn StateMachine>,
        data_dir: Option<&Path>,
        options: ShardSpawnOptions,
    ) -> Self {
        let my_addr = *addrs.get(&id).expect("own address present");
        let ids: Vec<ServerId> = {
            let mut v: Vec<ServerId> = addrs.keys().copied().collect();
            v.sort_unstable();
            v
        };
        let n = ids.len();

        let routes = GroupRoutes::new();
        let stop_accepting = Arc::new(AtomicBool::new(false));
        let mesh = TcpMesh::start(id, &addrs);
        let mut threads = Vec::new();

        // Register every group's inbox *before* the acceptor starts: the
        // reader drops any connection it serves while the routing table
        // is empty (that is the restart-detection rule), so accepting
        // with a half-filled table would bounce early peer connections.
        let mut inboxes = Vec::with_capacity(map.len());
        let mut receivers = Vec::with_capacity(map.len());
        for group in map.groups() {
            let (tx, rx) = crossbeam::channel::unbounded::<NodeInput>();
            routes.register(group, tx.clone());
            inboxes.push(tx);
            receivers.push((group, rx));
        }
        let service = options.serve_clients.then(|| {
            ClientService::new(Arc::new(ShardClientRouter {
                router: Router::new(map.clone()),
                inboxes: inboxes.clone(),
            }))
        });
        threads.push(spawn_acceptor(
            id,
            listener,
            routes.clone(),
            stop_accepting.clone(),
            service,
        ));

        for (group, rx) in receivers {
            let mut builder = Node::builder(id, ids.clone())
                .policy(spec.build_group_policy(id, n, seed.wrapping_add(id.get() as u64), group))
                .state_machine(state_machine_for(group))
                .options(ProtocolSpec::local_options());
            if let Some(root) = data_dir {
                let dir = group_data_dir(root, group);
                let (storage, recovered) =
                    WalStorage::open(&dir).expect("open/recover group data directory");
                let boxed: Box<dyn Storage> = match &options.storage_hook {
                    Some(hook) => hook(id, group, storage),
                    None => Box::new(storage),
                };
                builder = builder.storage(boxed).recover(recovered);
            }
            let node = builder.build();
            let outbound: Arc<dyn escape_transport::Outbound + Sync> =
                Arc::new(GroupOutbound::new(Arc::clone(&mesh), group));
            let clock = RuntimeClock::start();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("escape-shard-{}-g{}", id.get(), group.get()))
                    .spawn(move || node_loop(node, rx, outbound, clock))
                    .expect("spawn group node loop"),
            );
        }

        ShardedNode {
            id,
            my_addr,
            router: Router::new(map),
            inboxes,
            mesh,
            stop_accepting,
            threads,
        }
    }

    /// This server's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// The router (and through it the shard map) this node serves with.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// The shard map this node hosts.
    pub fn map(&self) -> &ShardMap {
        self.router.map()
    }

    /// The group that owns `key`.
    pub fn route(&self, key: &[u8]) -> GroupId {
        self.router.route(key)
    }

    /// The input channel of `group`'s engine on this server.
    pub fn inbox(&self, group: GroupId) -> Option<Sender<NodeInput>> {
        self.inboxes.get(group.index()).cloned()
    }

    /// A status snapshot of `group`'s engine on this server.
    pub fn status(&self, group: GroupId) -> Option<NodeStatus> {
        let inbox = self.inbox(group)?;
        let (tx, rx) = bounded(1);
        inbox.send(NodeInput::Query { reply: tx }).ok()?;
        rx.recv_timeout(REPLY_TIMEOUT).ok()
    }

    /// Publishes every hosted group's engine counters and histograms into
    /// `registry`, one label set per group (`node` = this server, `group`
    /// = the group id), plus the shared mesh's process-wide frame-drop
    /// total under the bare `node` label. Per-group series keep their
    /// identity; cross-group rollups come from the registry's
    /// aggregation (e.g.
    /// [`aggregate_histogram`](escape_obs::Registry::aggregate_histogram)).
    ///
    /// Groups whose engine thread does not answer within the reply
    /// timeout are skipped — their previously published values simply go
    /// stale rather than blocking the scrape.
    pub fn publish_metrics(&self, registry: &escape_obs::Registry) {
        let node_labels = escape_obs::Labels::new().with("node", self.id.get());
        for group in self.map().groups() {
            if let Some(status) = self.status(group) {
                let labels = node_labels.clone().with("group", group.get());
                status.metrics.publish(registry, &labels);
            }
        }
        registry
            .counter("escape_transport_mesh_frames_dropped_total", &node_labels)
            .store(self.mesh.frames_dropped());
    }

    /// Proposes `command` (whose routing key is `key`) into `group`,
    /// **validating the route first**: a client that addressed the wrong
    /// group gets [`ShardError::Redirect`] naming the owner instead of a
    /// wrong-shard write.
    ///
    /// # Errors
    ///
    /// [`ShardError::Redirect`] on a misroute, [`ShardError::NotLeader`]
    /// when this server does not lead the group,
    /// [`ShardError::Unavailable`] when the group thread is gone.
    pub fn propose_to(
        &self,
        group: GroupId,
        key: &[u8],
        command: Bytes,
    ) -> Result<LogIndex, ShardError> {
        let group = self
            .router
            .check(group, key)
            .map_err(ShardError::Redirect)?;
        let inbox = self.inbox(group).ok_or(ShardError::UnknownGroup(group))?;
        let (tx, rx) = bounded(1);
        inbox
            .send(NodeInput::Propose { command, reply: tx })
            .map_err(|_| ShardError::Unavailable)?;
        match rx.recv_timeout(REPLY_TIMEOUT) {
            Ok(Ok(index)) => Ok(index),
            Ok(Err(e)) => Err(e.into()),
            Err(_) => Err(ShardError::Unavailable),
        }
    }

    /// Routes `key` and proposes `command` into its owning group on this
    /// server, returning the group alongside the assigned index.
    ///
    /// # Errors
    ///
    /// As [`ShardedNode::propose_to`] (minus the redirect, which cannot
    /// happen when the server routes for you).
    pub fn propose(&self, key: &[u8], command: Bytes) -> Result<(GroupId, LogIndex), ShardError> {
        let group = self.route(key);
        let index = self.propose_to(group, key, command)?;
        Ok((group, index))
    }

    /// Proposes a batch of `(key, command)` pairs, per-shard batched:
    /// every command is routed and enqueued into its owning group
    /// *before* any reply is awaited, so each group's node loop drains
    /// its share into one engine batch (one WAL flush, one coalesced
    /// fan-out per group) instead of one commit cycle per command.
    /// Returns one outcome per input, in input order.
    pub fn propose_batch(
        &self,
        items: Vec<(Bytes, Bytes)>,
    ) -> Vec<Result<(GroupId, LogIndex), ShardError>> {
        // Phase 1: route + enqueue everything (this is what lets the
        // per-group queues coalesce).
        let mut pending = Vec::with_capacity(items.len());
        for (key, command) in items {
            let group = self.route(&key);
            let Some(inbox) = self.inbox(group) else {
                pending.push((group, Err(ShardError::UnknownGroup(group))));
                continue;
            };
            let (tx, rx) = bounded(1);
            match inbox.send(NodeInput::Propose { command, reply: tx }) {
                Ok(()) => pending.push((group, Ok(rx))),
                Err(_) => pending.push((group, Err(ShardError::Unavailable))),
            }
        }
        // Phase 2: collect the replies in input order.
        pending
            .into_iter()
            .map(|(group, slot)| match slot {
                Ok(rx) => match rx.recv_timeout(REPLY_TIMEOUT) {
                    Ok(Ok(index)) => Ok((group, index)),
                    Ok(Err(e)) => Err(e.into()),
                    Err(_) => Err(ShardError::Unavailable),
                },
                Err(e) => Err(e),
            })
            .collect()
    }

    /// Linearizable reads, per-shard batched like
    /// [`ShardedNode::propose_batch`]: every `(key, query)` pair is
    /// routed and enqueued into its owning group before any reply is
    /// awaited, so each group answers its share of the queries with one
    /// ReadIndex confirmation round (or zero rounds under a held lease)
    /// instead of one per query. Returns one response per input, in
    /// input order.
    pub fn read_batch(&self, items: Vec<(Bytes, Bytes)>) -> Vec<Result<Bytes, ShardError>> {
        // Phase 1: route + enqueue. Queries for the same group land
        // back-to-back in its inbox, where the node loop's read drain
        // coalesces them into one engine batch.
        let mut pending = Vec::with_capacity(items.len());
        for (key, query) in items {
            let group = self.route(&key);
            let Some(inbox) = self.inbox(group) else {
                pending.push(Err(ShardError::UnknownGroup(group)));
                continue;
            };
            let (tx, rx) = bounded(1);
            match inbox.send(NodeInput::Read {
                queries: vec![query],
                reply: tx,
            }) {
                Ok(()) => pending.push(Ok(rx)),
                Err(_) => pending.push(Err(ShardError::Unavailable)),
            }
        }
        // Phase 2: collect in input order.
        pending
            .into_iter()
            .map(|slot| match slot {
                Ok(rx) => match rx.recv_timeout(REPLY_TIMEOUT) {
                    Ok(Ok(mut results)) => {
                        debug_assert_eq!(results.len(), 1);
                        Ok(results.pop().unwrap_or_default())
                    }
                    Ok(Err(e)) => Err(e.into()),
                    Err(_) => Err(ShardError::Unavailable),
                },
                Err(e) => Err(e),
            })
            .collect()
    }

    /// Routes `key` and reads it through its owning group's linearizable
    /// read path on this server.
    ///
    /// # Errors
    ///
    /// [`ShardError::NotLeader`] when this server does not lead the
    /// owning group, [`ShardError::Unavailable`] when the group thread is
    /// gone or silent.
    pub fn read(&self, key: &[u8], query: Bytes) -> Result<(GroupId, Bytes), ShardError> {
        let group = self.route(key);
        let inbox = self.inbox(group).ok_or(ShardError::UnknownGroup(group))?;
        let (tx, rx) = bounded(1);
        inbox
            .send(NodeInput::Read {
                queries: vec![query],
                reply: tx,
            })
            .map_err(|_| ShardError::Unavailable)?;
        match rx.recv_timeout(REPLY_TIMEOUT) {
            Ok(Ok(mut results)) => Ok((group, results.pop().unwrap_or_default())),
            Ok(Err(e)) => Err(e.into()),
            Err(_) => Err(ShardError::Unavailable),
        }
    }

    /// Waits for `group` to apply `index`, returning the state machine's
    /// response.
    ///
    /// # Errors
    ///
    /// [`ShardError::UnknownGroup`] / [`ShardError::Unavailable`].
    pub fn await_applied(&self, group: GroupId, index: LogIndex) -> Result<Bytes, ShardError> {
        let inbox = self.inbox(group).ok_or(ShardError::UnknownGroup(group))?;
        let (tx, rx) = bounded(1);
        inbox
            .send(NodeInput::AwaitApplied { index, reply: tx })
            .map_err(|_| ShardError::Unavailable)?;
        rx.recv_timeout(APPLY_TIMEOUT)
            .map_err(|_| ShardError::Unavailable)
    }

    fn stop_acceptor(&self) {
        self.stop_accepting.store(true, Ordering::Release);
        let _ = TcpStream::connect_timeout(&self.my_addr, Duration::from_millis(250));
    }

    /// Stops every group and joins all threads. Like the single-group
    /// node there is no flush-on-exit: each group's durability happened
    /// record-by-record, so shutdown and [`ShardedNode::kill`] leave
    /// identical per-group data directories.
    pub fn shutdown(self) {
        for inbox in &self.inboxes {
            let _ = inbox.send(NodeInput::Shutdown);
        }
        self.stop_acceptor();
        self.mesh.stop();
        for handle in self.threads {
            let _ = handle.join();
        }
    }

    /// Crash the whole process: every hosted group stops at once with no
    /// goodbye — the multi-shard equivalent of a SIGKILL. Restart on the
    /// same listener and data root to model a process restart; recovery
    /// then iterates the per-group subdirectories.
    pub fn kill(self) {
        self.shutdown();
    }
}
