//! # escape-shard
//!
//! Horizontal scale for the ESCAPE stack: one keyspace partitioned across
//! N independent consensus groups, each a full ESCAPE instance with its
//! own prepared-leader pool, hosted together behind one TCP mesh.
//!
//! The paper's core idea — stage prepared leaders so failover is a reflex
//! rather than an election — protects one group. This crate multiplies
//! it: a leader failure costs one shard one reflex failover while every
//! other shard's traffic continues undisturbed.
//!
//! * [`map`] — [`ShardMap`]: a versioned hash-range partition of the
//!   keyspace (static N today, versioned for future splits).
//! * [`router`] — [`Router`]: key → owning group, with [`Redirect`]s for
//!   misrouted commands.
//! * [`node`] — [`ShardedNode`]: one process hosting every group's
//!   engine over a shared mesh, with per-group `group-<g>/` data
//!   subdirectories and recovery that iterates the groups.
//!
//! ```no_run
//! use std::collections::HashMap;
//! use bytes::Bytes;
//! use escape_shard::{ShardMap, ShardedNode};
//! use escape_transport::spec::ProtocolSpec;
//! use escape_transport::tcp::loopback_listeners;
//!
//! let (addrs, listeners) = loopback_listeners(3);
//! let nodes: Vec<ShardedNode> = addrs
//!     .keys()
//!     .map(|id| {
//!         ShardedNode::spawn(
//!             *id,
//!             listeners[id].try_clone().unwrap(),
//!             addrs.clone(),
//!             ProtocolSpec::escape_local(),
//!             7,
//!             ShardMap::uniform(4),
//!             |_group| Box::new(escape_core::statemachine::NullStateMachine),
//!             None,
//!         )
//!     })
//!     .collect();
//! // Commands route by key; each shard elects its own leader.
//! let group = nodes[0].route(b"account-42");
//! println!("account-42 lives in {group}");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod map;
pub mod node;
pub mod router;

pub use map::ShardMap;
pub use node::{group_data_dir, ShardError, ShardSpawnOptions, ShardedNode};
pub use router::{Redirect, Router};
