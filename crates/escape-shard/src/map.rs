//! The shard map: which consensus group owns which slice of the keyspace.
//!
//! Keys hash (FNV-1a) onto the full `u64` line, which is partitioned into
//! contiguous ranges — one per group. The map is **versioned**: today the
//! partition is a static uniform split chosen at deployment, but every
//! derived map (see [`ShardMap::split`]) bumps the version, so routers and
//! redirects can already tell a stale map from a current one when dynamic
//! splits arrive.

use escape_core::hash::fnv1a;
use escape_core::rand::{Rng64, SplitMix64};
use escape_core::types::GroupId;

/// One SplitMix64 step as a finalizer: FNV-1a's high bits are weakly
/// mixed for short keys, and range ownership is decided by the *top* of
/// the hash line, so the raw hash must pass a full-width avalanche first
/// or sequential key families pile onto a few groups. Routing
/// determinism depends on this mixing never changing.
fn spread(h: u64) -> u64 {
    SplitMix64::new(h).next_u64()
}

/// A versioned partition of the hashed keyspace into consensus groups.
///
/// Each entry of `ranges` is `(start, owner)`: the owner of the
/// half-open hash range from `start` to the next entry's start, with the
/// last range running to the top of the `u64` line (inclusive). Ranges
/// carry their owner explicitly (rather than by position) so that a
/// future [`split`](ShardMap::split) can hand a slice to a brand-new
/// group **without renumbering any existing group** — keys that routed
/// to group `g` before a split of some *other* group still route to `g`.
///
/// # Examples
///
/// ```
/// use escape_shard::ShardMap;
///
/// let map = ShardMap::uniform(4);
/// assert_eq!(map.len(), 4);
/// let owner = map.owner(b"account-17");
/// // The owner is stable: routing the same key again gives the same group.
/// assert_eq!(map.owner(b"account-17"), owner);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    version: u64,
    /// `(range start, owning group)`, ascending by start;
    /// `ranges[0].0 == 0`. Group ids are dense `0..len` but not
    /// necessarily in range order once a split has happened.
    ranges: Vec<(u64, GroupId)>,
}

impl ShardMap {
    /// A uniform split of the hash line into `n` equal ranges, version 1.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero (a keyspace nobody owns cannot be routed).
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "a shard map needs at least one group");
        let span = (u64::MAX as u128 + 1) / n as u128;
        ShardMap {
            version: 1,
            ranges: (0..n as u128)
                .map(|i| ((i * span) as u64, GroupId::from_index(i as usize)))
                .collect(),
        }
    }

    /// The map version; any future repartition produces a larger one.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// `true` only for an impossible empty map (kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Every group id in the map, ascending by id. Ids are dense
    /// `0..len` regardless of split history.
    pub fn groups(&self) -> impl Iterator<Item = GroupId> + '_ {
        (0..self.ranges.len()).map(GroupId::from_index)
    }

    /// The raw `(range start, owning group)` table, ascending by start —
    /// the map's wire form (`escape_wire::WireShardMap` carries exactly
    /// this plus the version).
    pub fn ranges(&self) -> &[(u64, GroupId)] {
        &self.ranges
    }

    /// Reconstructs a map received off the wire, validating the shape
    /// every routing method assumes: a nonzero version, a non-empty table
    /// whose first range starts at 0 with strictly ascending starts, and
    /// owning groups dense `0..len` (each exactly once). Returns `None`
    /// for anything else — a corrupt or adversarial map must not become
    /// a router.
    pub fn from_wire(version: u64, ranges: Vec<(u64, GroupId)>) -> Option<ShardMap> {
        if version == 0 || ranges.first().map(|(start, _)| *start) != Some(0) {
            return None;
        }
        if !ranges.windows(2).all(|pair| pair[0].0 < pair[1].0) {
            return None;
        }
        let mut seen = vec![false; ranges.len()];
        for (_, group) in &ranges {
            let slot = seen.get_mut(group.index())?;
            if *slot {
                return None;
            }
            *slot = true;
        }
        Some(ShardMap { version, ranges })
    }

    /// The group owning `hash` on the `u64` line.
    pub fn owner_of_hash(&self, hash: u64) -> GroupId {
        // partition_point: first range starting strictly above `hash`;
        // its predecessor's range contains `hash`.
        let idx = self.ranges.partition_point(|(start, _)| *start <= hash) - 1;
        self.ranges[idx].1
    }

    /// The group owning `key` (FNV-1a plus a SplitMix64 finalizer onto
    /// the hash line).
    pub fn owner(&self, key: &[u8]) -> GroupId {
        self.owner_of_hash(spread(fnv1a(key)))
    }

    /// The half-open hash range `[start, end)` group `group` owns
    /// (`end == None` means "through `u64::MAX` inclusive"), or `None`
    /// for a group not in the map.
    pub fn range(&self, group: GroupId) -> Option<(u64, Option<u64>)> {
        let idx = self.ranges.iter().position(|(_, g)| *g == group)?;
        let start = self.ranges[idx].0;
        Some((start, self.ranges.get(idx + 1).map(|(s, _)| *s)))
    }

    /// A new map in which `group`'s range is halved, the upper half going
    /// to a brand-new group (id = current [`len`](ShardMap::len)) — the
    /// future-split shape the versioning exists for. Every existing
    /// group keeps both its id and its remaining range. Returns `None`
    /// if `group` is unknown or its range is too narrow to split.
    pub fn split(&self, group: GroupId) -> Option<ShardMap> {
        let idx = self.ranges.iter().position(|(_, g)| *g == group)?;
        let start = self.ranges[idx].0;
        let end = self
            .ranges
            .get(idx + 1)
            .map_or(u64::MAX as u128 + 1, |(s, _)| u128::from(*s));
        let mid = ((u128::from(start) + end) / 2) as u64;
        if mid == start {
            return None; // one-point range: nothing left to split
        }
        let mut ranges = self.ranges.clone();
        ranges.insert(idx + 1, (mid, GroupId::from_index(self.ranges.len())));
        Some(ShardMap {
            version: self.version + 1,
            ranges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_map_covers_the_whole_line() {
        let map = ShardMap::uniform(4);
        assert_eq!(map.owner_of_hash(0), GroupId::new(0));
        assert_eq!(map.owner_of_hash(u64::MAX), GroupId::new(3));
        // Boundaries land in the upper group (half-open ranges).
        let (start_g1, _) = map.range(GroupId::new(1)).unwrap();
        assert_eq!(map.owner_of_hash(start_g1), GroupId::new(1));
        assert_eq!(map.owner_of_hash(start_g1 - 1), GroupId::new(0));
    }

    #[test]
    fn single_group_owns_everything() {
        let map = ShardMap::uniform(1);
        for h in [0, 1, u64::MAX / 2, u64::MAX] {
            assert_eq!(map.owner_of_hash(h), GroupId::ZERO);
        }
    }

    #[test]
    fn keys_spread_over_every_group() {
        let map = ShardMap::uniform(8);
        let mut counts = [0usize; 8];
        for i in 0..4000 {
            let key = format!("user-{i}");
            counts[map.owner(key.as_bytes()).index()] += 1;
        }
        for (g, count) in counts.iter().enumerate() {
            assert!(
                *count > 4000 / 8 / 4,
                "group {g} got only {count} of 4000 keys — hash badly skewed"
            );
        }
    }

    #[test]
    fn routing_is_deterministic() {
        let a = ShardMap::uniform(16);
        let b = ShardMap::uniform(16);
        for i in 0..500 {
            let key = format!("k{i}");
            assert_eq!(a.owner(key.as_bytes()), b.owner(key.as_bytes()));
        }
    }

    #[test]
    fn split_bumps_version_and_partitions_the_range() {
        let map = ShardMap::uniform(2);
        let split = map.split(GroupId::new(1)).expect("wide range splits");
        assert_eq!(split.version(), map.version() + 1);
        assert_eq!(split.len(), 3);
        let (start, end) = map.range(GroupId::new(1)).unwrap();
        assert_eq!(end, None);
        let mid = (u128::from(start) + (u64::MAX as u128 + 1)) / 2;
        // Below the midpoint stays with the old group; above moves to the
        // brand-new group (id = previous len).
        assert_eq!(split.owner_of_hash(start), GroupId::new(1));
        assert_eq!(split.owner_of_hash(mid as u64), GroupId::new(2));
        // Hashes outside the split range keep their owner.
        assert_eq!(split.owner_of_hash(0), map.owner_of_hash(0));
    }

    /// Splitting a non-last group must not renumber the groups after it:
    /// every pre-existing group keeps its id and its (remaining) range.
    #[test]
    fn splitting_a_middle_group_leaves_other_groups_ranges_alone() {
        let map = ShardMap::uniform(4);
        let split = map.split(GroupId::new(0)).expect("splits");
        assert_eq!(split.len(), 5);
        // Groups 1..=3 keep their exact ranges.
        for g in 1..=3u32 {
            assert_eq!(
                split.range(GroupId::new(g)),
                map.range(GroupId::new(g)),
                "group {g} must be untouched by a split of group 0"
            );
        }
        // The upper half of group 0's old range belongs to the new group 4.
        let (start0, end0) = map.range(GroupId::new(0)).unwrap();
        let mid = (u128::from(start0) + u128::from(end0.unwrap())) / 2;
        assert_eq!(split.owner_of_hash(start0), GroupId::new(0));
        assert_eq!(split.owner_of_hash(mid as u64), GroupId::new(4));
        // Exhaustive agreement everywhere outside the split range.
        for probe in [end0.unwrap(), u64::MAX / 2, u64::MAX] {
            assert_eq!(split.owner_of_hash(probe), map.owner_of_hash(probe));
        }
    }

    #[test]
    fn split_of_unknown_group_is_none() {
        assert!(ShardMap::uniform(2).split(GroupId::new(9)).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn zero_groups_rejected() {
        let _ = ShardMap::uniform(0);
    }

    #[test]
    fn wire_round_trip_preserves_routing() {
        let map = ShardMap::uniform(4).split(GroupId::new(2)).expect("splits");
        let rebuilt = ShardMap::from_wire(map.version(), map.ranges().to_vec())
            .expect("a map's own wire form must validate");
        assert_eq!(rebuilt, map);
        for i in 0..200 {
            let key = format!("wire-{i}");
            assert_eq!(rebuilt.owner(key.as_bytes()), map.owner(key.as_bytes()));
        }
    }

    #[test]
    fn from_wire_rejects_malformed_tables() {
        let g = GroupId::new;
        // Empty, zero version, not starting at 0, unsorted, duplicate
        // group, non-dense ids.
        assert!(ShardMap::from_wire(1, vec![]).is_none());
        assert!(ShardMap::from_wire(0, vec![(0, g(0))]).is_none());
        assert!(ShardMap::from_wire(1, vec![(5, g(0))]).is_none());
        assert!(ShardMap::from_wire(1, vec![(0, g(0)), (9, g(1)), (4, g(2))]).is_none());
        assert!(ShardMap::from_wire(1, vec![(0, g(0)), (9, g(0))]).is_none());
        assert!(ShardMap::from_wire(1, vec![(0, g(0)), (9, g(5))]).is_none());
    }

    #[test]
    fn groups_iterates_in_order() {
        let map = ShardMap::uniform(3);
        let ids: Vec<u32> = map.groups().map(|g| g.get()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert!(!map.is_empty());
    }
}
