//! The command router: keys → owning group, with redirects for misrouted
//! commands.
//!
//! A client that guesses (or caches) the wrong group for a key does not
//! get silence or a wrong-shard write — it gets a [`Redirect`] naming the
//! owning group and the map version the verdict was made under, so a
//! client holding a stale map knows to refresh.

use std::fmt;

use escape_core::types::GroupId;

use crate::map::ShardMap;

/// The verdict on a misrouted command: where it was sent, who actually
/// owns the key, and which map version says so.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Redirect {
    /// The group the client addressed.
    pub asked: GroupId,
    /// The group that owns the key.
    pub owner: GroupId,
    /// The shard-map version the ownership verdict comes from.
    pub map_version: u64,
}

impl fmt::Display for Redirect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "key owned by {} not {} (shard map v{})",
            self.owner, self.asked, self.map_version
        )
    }
}

/// Routes client commands to the group owning their key.
///
/// # Examples
///
/// ```
/// use escape_shard::{Router, ShardMap};
///
/// let router = Router::new(ShardMap::uniform(4));
/// let owner = router.route(b"city");
/// assert!(router.check(owner, b"city").is_ok());
/// ```
#[derive(Clone, Debug)]
pub struct Router {
    map: ShardMap,
}

impl Router {
    /// A router over `map`.
    pub fn new(map: ShardMap) -> Self {
        Router { map }
    }

    /// The shard map the router consults.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The group that owns `key`.
    pub fn route(&self, key: &[u8]) -> GroupId {
        self.map.owner(key)
    }

    /// Validates that `asked` owns `key`: `Ok(asked)` when correctly
    /// routed, otherwise a [`Redirect`] naming the owner.
    ///
    /// # Errors
    ///
    /// [`Redirect`] when `asked` does not own `key` (including when
    /// `asked` is not in the map at all).
    pub fn check(&self, asked: GroupId, key: &[u8]) -> Result<GroupId, Redirect> {
        let owner = self.route(key);
        if owner == asked {
            Ok(owner)
        } else {
            Err(Redirect {
                asked,
                owner,
                map_version: self.map.version(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correctly_routed_commands_pass() {
        let router = Router::new(ShardMap::uniform(4));
        for i in 0..64 {
            let key = format!("key-{i}");
            let owner = router.route(key.as_bytes());
            assert_eq!(router.check(owner, key.as_bytes()), Ok(owner));
        }
    }

    #[test]
    fn misrouted_commands_get_a_redirect_naming_the_owner() {
        let router = Router::new(ShardMap::uniform(4));
        let key = b"misrouted-key";
        let owner = router.route(key);
        let wrong = GroupId::from_index((owner.index() + 1) % 4);
        let redirect = router.check(wrong, key).expect_err("must redirect");
        assert_eq!(redirect.owner, owner);
        assert_eq!(redirect.asked, wrong);
        assert_eq!(redirect.map_version, router.map().version());
        let text = redirect.to_string();
        assert!(text.contains(&owner.to_string()), "{text}");
    }

    #[test]
    fn unknown_group_also_redirects() {
        let router = Router::new(ShardMap::uniform(2));
        let key = b"k";
        let redirect = router.check(GroupId::new(7), key).expect_err("redirect");
        assert_eq!(redirect.owner, router.route(key));
    }
}
