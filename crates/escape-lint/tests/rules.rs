//! Fixture tests: every rule must trip on its known-bad fixture and stay
//! quiet on the known-good one, so disabling (or breaking) any single
//! rule fails this suite. The last test runs the real workspace and is
//! the same gate CI enforces.

use escape_lint::rules;
use escape_lint::{apply_waivers, default_lock_manifest, Finding, Rule, SourceFile};

fn parse(path: &str, crate_name: &str, text: &str) -> SourceFile {
    SourceFile::parse(path, crate_name, text)
}

fn count(findings: &[Finding], rule: Rule) -> usize {
    findings.iter().filter(|f| f.rule == rule && !f.waived).count()
}

// ---- panic-freedom -----------------------------------------------------

#[test]
fn panic_rule_trips_on_every_bad_construct() {
    let file = parse(
        "crates/escape-core/src/fixture.rs",
        "escape-core",
        include_str!("fixtures/panic_bad.rs"),
    );
    let findings = rules::panic::check(&file);
    // v[0], unwrap, expect, panic! — one finding each.
    assert_eq!(findings.len(), 4, "{findings:?}");
}

#[test]
fn panic_rule_passes_clean_code_and_test_code() {
    let file = parse(
        "crates/escape-core/src/fixture.rs",
        "escape-core",
        include_str!("fixtures/panic_good.rs"),
    );
    assert!(rules::panic::check(&file).is_empty());
}

#[test]
fn panic_rule_is_scoped_to_the_safety_critical_crates() {
    let file = parse(
        "crates/escape-sim/src/fixture.rs",
        "escape-sim",
        include_str!("fixtures/panic_bad.rs"),
    );
    assert!(rules::panic::check(&file).is_empty());
}

#[test]
fn waivers_suppress_inline_and_line_above_and_are_policed() {
    let file = parse(
        "crates/escape-core/src/fixture.rs",
        "escape-core",
        include_str!("fixtures/panic_waived.rs"),
    );
    let mut findings = rules::panic::check(&file);
    apply_waivers(&file, &mut findings);
    let waived = findings
        .iter()
        .filter(|f| f.rule == Rule::Panic && f.waived)
        .count();
    assert_eq!(waived, 2, "same-line and line-above waivers: {findings:?}");
    // The reasonless waiver suppresses nothing, so its unwrap survives.
    assert_eq!(count(&findings, Rule::Panic), 1, "{findings:?}");
    // Stale + reasonless + unknown-rule each become hygiene findings.
    assert_eq!(count(&findings, Rule::Waiver), 3, "{findings:?}");
}

// ---- deterministic-time ------------------------------------------------

#[test]
fn time_rule_trips_outside_the_clock_module() {
    let file = parse(
        "crates/escape-core/src/fixture.rs",
        "escape-core",
        include_str!("fixtures/time_bad.rs"),
    );
    assert_eq!(rules::time::check(&file).len(), 2);
}

#[test]
fn time_rule_allows_the_clock_module_itself() {
    let file = parse(
        "crates/escape-transport/src/clock.rs",
        "escape-transport",
        include_str!("fixtures/time_bad.rs"),
    );
    assert!(rules::time::check(&file).is_empty());
}

// ---- write-before-send -------------------------------------------------

#[test]
fn wbs_rule_trips_on_send_before_persist_and_unpersisted_hard_state() {
    let file = parse(
        "crates/escape-core/src/engine/fixture.rs",
        "escape-core",
        include_str!("fixtures/wbs_bad.rs"),
    );
    let findings = rules::wbs::check(&file);
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().any(|f| f.message.contains("stages an outbound")));
    assert!(findings.iter().any(|f| f.message.contains("current_term")));
}

#[test]
fn wbs_rule_passes_persist_first_ordering() {
    let file = parse(
        "crates/escape-core/src/engine/fixture.rs",
        "escape-core",
        include_str!("fixtures/wbs_good.rs"),
    );
    assert!(rules::wbs::check(&file).is_empty());
}

// ---- lock-discipline ---------------------------------------------------

#[test]
fn lock_rule_trips_on_blocking_unknown_and_misordered() {
    let file = parse(
        "crates/escape-transport/src/fixture.rs",
        "escape-transport",
        include_str!("fixtures/locks_bad.rs"),
    );
    let findings = rules::locks::check(&file, &default_lock_manifest());
    assert_eq!(findings.len(), 3, "{findings:?}");
    assert!(findings.iter().any(|f| f.message.contains("may block")));
    assert!(findings.iter().any(|f| f.message.contains("not in the acquisition-order")));
    assert!(findings.iter().any(|f| f.message.contains("violates")));
}

#[test]
fn lock_rule_passes_dropped_guards_and_manifest_order() {
    let file = parse(
        "crates/escape-transport/src/fixture.rs",
        "escape-transport",
        include_str!("fixtures/locks_good.rs"),
    );
    let findings = rules::locks::check(&file, &default_lock_manifest());
    assert!(findings.is_empty(), "{findings:?}");
}

// ---- wire-exhaustiveness -----------------------------------------------

fn wire_fixture(codec_text: &str) -> Vec<Finding> {
    let message = parse(
        "crates/escape-core/src/message.rs",
        "escape-core",
        include_str!("fixtures/wire_message.rs"),
    );
    let codec = parse("crates/escape-wire/src/codec.rs", "escape-wire", codec_text);
    rules::wire::check(&message, &codec)
}

#[test]
fn wire_rule_passes_full_coverage() {
    let findings = wire_fixture(include_str!("fixtures/wire_codec_good.rs"));
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn wire_rule_trips_on_each_coverage_hole() {
    let findings = wire_fixture(include_str!("fixtures/wire_codec_bad.rs"));
    assert_eq!(findings.len(), 3, "{findings:?}");
    assert!(findings.iter().any(|f| f.message.contains("Ping has no decode arm")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("AppendEntries never appears")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("`from` is missing from encode")));
}

// ---- event-exhaustiveness ----------------------------------------------

fn events_fixture(text: &str) -> Vec<Finding> {
    let events = parse("crates/escape-obs/src/event.rs", "escape-obs", text);
    rules::wire::check_events(&events)
}

#[test]
fn event_rule_passes_full_coverage() {
    let findings = events_fixture(include_str!("fixtures/events_good.rs"));
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn event_rule_trips_on_each_coverage_hole() {
    let findings = events_fixture(include_str!("fixtures/events_bad.rs"));
    assert_eq!(findings.len(), 3, "{findings:?}");
    assert!(findings.iter().any(|f| f.message.contains("NodeKilled has no encode arm")));
    assert!(findings.iter().any(|f| f.message.contains("NodeKilled has no render arm")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("NodeKilled never appears in this file's tests")));
}

// ---- unsafe-annotation -------------------------------------------------

#[test]
fn unsafe_rule_requires_a_nearby_safety_comment() {
    let bad = parse(
        "crates/escape-core/src/fixture.rs",
        "escape-core",
        include_str!("fixtures/unsafe_bad.rs"),
    );
    assert_eq!(rules::unsafety::check(&bad).len(), 1);

    let good = parse(
        "crates/escape-core/src/fixture.rs",
        "escape-core",
        include_str!("fixtures/unsafe_good.rs"),
    );
    assert!(rules::unsafety::check(&good).is_empty());
}

#[test]
fn crate_roots_must_deny_unsafe_code() {
    let bad = parse(
        "crates/escape-core/src/lib.rs",
        "escape-core",
        "//! A crate root without the lint gate.\npub mod engine;\n",
    );
    assert_eq!(rules::unsafety::check_crate_root(&bad).len(), 1);

    let good = parse(
        "crates/escape-core/src/lib.rs",
        "escape-core",
        "#![deny(unsafe_code)]\npub mod engine;\n",
    );
    assert!(rules::unsafety::check_crate_root(&good).is_empty());
}

// ---- the real workspace ------------------------------------------------

#[test]
fn workspace_has_no_unwaived_violations() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root");
    let report = escape_lint::run_workspace(root).expect("walk workspace");
    let violations: Vec<String> = report.violations().map(ToString::to_string).collect();
    assert!(violations.is_empty(), "{violations:#?}");
}
