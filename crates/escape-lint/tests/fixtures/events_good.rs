//! Known-good fixture for the event-exhaustiveness half of the wire
//! rule: every variant has an encode arm, a render arm, and appears in
//! the tests.

pub enum Event {
    LeaderElected { term: u64 },
    NodeKilled,
}

impl Event {
    pub fn encode(&self, out: &mut String) {
        match self {
            Event::LeaderElected { term } => out.push_str(&format!("leader_elected term={term}")),
            Event::NodeKilled => out.push_str("node_killed"),
        }
    }

    pub fn render(&self) -> String {
        match self {
            Event::LeaderElected { term } => format!("won the election for term {term}"),
            Event::NodeKilled => "killed by the harness".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for event in [Event::LeaderElected { term: 1 }, Event::NodeKilled] {
            let mut line = String::new();
            event.encode(&mut line);
            assert!(!line.is_empty());
            assert!(!event.render().is_empty());
        }
    }
}
