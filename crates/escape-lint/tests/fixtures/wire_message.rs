// Fixture: the enum the wire rule reads its variant list from.

pub enum Message {
    RequestVote(RequestVoteArgs),
    AppendEntries(AppendEntriesArgs),
    Ping,
}
