//! Known-bad fixture for the event-exhaustiveness half of the wire
//! rule: `NodeKilled` hides behind a wildcard in encode, is missing from
//! render entirely, and never appears in the tests.

pub enum Event {
    LeaderElected { term: u64 },
    NodeKilled,
}

impl Event {
    pub fn encode(&self, out: &mut String) {
        match self {
            Event::LeaderElected { term } => out.push_str(&format!("leader_elected term={term}")),
            _ => out.push_str("unknown"),
        }
    }

    pub fn render(&self) -> String {
        match self {
            Event::LeaderElected { term } => format!("won the election for term {term}"),
            _ => "something happened".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut line = String::new();
        Event::LeaderElected { term: 1 }.encode(&mut line);
        assert!(!line.is_empty());
    }
}
