// Fixture: the correct order — durable first, then the reply.

impl Node {
    fn persists_before_replying(&mut self, peer: ServerId, out: &mut Vec<Action>) {
        self.voted_for = Some(peer);
        self.persist_hard_state();
        self.send(peer, Message::RequestVoteReply(reply), None, out);
    }
}
