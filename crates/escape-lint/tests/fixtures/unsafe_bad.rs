// Fixture: an unsafe impl with no SAFETY comment anywhere near it.

#[allow(unsafe_code)]
unsafe impl Send for Handle {}
