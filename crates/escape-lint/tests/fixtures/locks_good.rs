// Fixture: guard dropped before blocking; nesting follows the manifest.

impl Mesh {
    fn drop_before_blocking(&self) {
        let guard = self.link.lock();
        let frame = guard.front();
        drop(guard);
        self.stream.write_all(b"frame").ok();
    }

    fn ordered_nesting(&self) {
        let registry = self.inner.lock();
        let link = self.link.lock();
        let _ = (registry, link);
    }
}
