// Fixture: waiver mechanics — same-line, line-above, and the three
// hygiene failures (stale, reasonless, unknown rule).

pub fn waived_inline(v: &[u8]) -> u8 {
    v[0] // lint:allow(panic): caller guarantees non-empty
}

pub fn waived_above(v: &[u8]) -> u8 {
    // lint:allow(panic): caller guarantees at least two elements
    v[1]
}

pub fn stale() -> u8 {
    // lint:allow(panic): nothing here trips the rule
    0
}

pub fn reasonless(o: Option<u8>) -> u8 {
    o.unwrap() // lint:allow(panic)
}

pub fn unknown_rule() -> u8 {
    // lint:allow(nonsense): because
    0
}
