// Fixture: panic-free equivalents, plus test code where unwrap is fine.

pub fn careful(v: &[u8], o: Option<u8>) -> u8 {
    let first = v.first().copied().unwrap_or(0);
    let x = o.unwrap_or_default();
    first + x
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let o: Option<u8> = Some(1);
        assert_eq!(o.unwrap(), 1);
    }
}
