// Fixture: the annotation the rule wants, within three lines above.

// SAFETY: Handle owns its pointer exclusively; sending it to another
// thread transfers that ownership wholesale.
#[allow(unsafe_code)]
unsafe impl Send for Handle {}
