// Fixture: the three lock-discipline failures — blocking under a
// guard, a lock missing from the manifest, inverted nesting order.

impl Mesh {
    fn blocking_under_guard(&self) {
        let link = self.link.lock();
        link.stream.write_all(b"frame").ok();
    }

    fn unknown_lock(&self) {
        let g = self.mystery.lock();
        g.len();
    }

    fn wrong_order(&self) {
        let outer = self.link.lock();
        let inner = self.inner.lock();
        let _ = (outer, inner);
    }
}
