// Fixture: ambient clock reads. Parsed once under an engine path (both
// must trip) and once under the clock-module path (both are allowed).

pub fn naughty() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn also_naughty() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
