// Fixture: both write-before-send failure modes — staging a reply
// before the persist, and a hard-state write with no persist at all.

impl Node {
    fn replies_before_persisting(&mut self, peer: ServerId, out: &mut Vec<Action>) {
        self.voted_for = Some(peer);
        self.send(peer, Message::RequestVoteReply(reply), None, out);
        self.persist_hard_state();
    }

    fn forgets_to_persist(&mut self, term: Term) {
        self.current_term = term;
    }
}
