// Fixture: three coverage holes — Ping has no decode arm, AppendEntries
// is never roundtrip-tested, and Envelope's `from` is dropped by encode.

pub struct Envelope {
    pub group: GroupId,
    pub from: ServerId,
    pub message: Message,
}

impl Encode for Message {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Message::RequestVote(args) => args.encode(buf),
            Message::AppendEntries(args) => args.encode(buf),
            Message::Ping => {}
        }
    }
}

impl Decode for Message {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(match tag(buf)? {
            0 => Message::RequestVote(Decode::decode(buf)?),
            1 => Message::AppendEntries(Decode::decode(buf)?),
            t => return Err(WireError::UnknownTag(t)),
        })
    }
}

impl Encode for Envelope {
    fn encode(&self, buf: &mut BytesMut) {
        self.group.encode(buf);
        self.message.encode(buf);
    }
}

impl Decode for Envelope {
    fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        Ok(Envelope {
            group: Decode::decode(buf)?,
            from: Decode::decode(buf)?,
            message: Decode::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn roundtrips() {
        roundtrip(Message::RequestVote(sample_vote()));
        roundtrip(Message::Ping);
        roundtrip(Envelope {
            group: GroupId::ZERO,
            from: ServerId::new(1),
            message: Message::Ping,
        });
    }
}
