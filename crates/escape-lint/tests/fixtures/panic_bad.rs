// Fixture: every construct the panic-freedom rule must catch.

pub fn broken(v: &[u8], o: Option<u8>) -> u8 {
    let first = v[0];
    let x = o.unwrap();
    let y = o.expect("present");
    if first == 0 {
        panic!("zero");
    }
    x + y
}
