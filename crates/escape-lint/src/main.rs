//! The `escape-lint` binary: walks `crates/*/src` under the given root
//! (default: the current directory), prints file:line diagnostics plus
//! the per-rule violation/waiver summary, and exits nonzero when any
//! unwaived violation remains. CI runs this as a tier-1 gate next to
//! clippy.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let root = match args.next() {
        Some(flag) if flag == "--help" || flag == "-h" => {
            println!(
                "usage: escape-lint [WORKSPACE_ROOT]\n\n\
                 Checks the ESCAPE workspace invariants (panic-freedom, \
                 deterministic time, write-before-send, lock discipline, wire \
                 exhaustiveness, unsafe hygiene) over crates/*/src.\n\n\
                 Waive a finding with `// lint:allow(<rule>): <reason>` on the \
                 offending line; waivers are counted in the summary and must \
                 each suppress something."
            );
            return ExitCode::SUCCESS;
        }
        Some(path) => PathBuf::from(path),
        None => PathBuf::from("."),
    };

    match escape_lint::run_workspace(&root) {
        Ok(report) => {
            print!("{}", report.render());
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("escape-lint: cannot walk {}: {e}", root.display());
            ExitCode::FAILURE
        }
    }
}
