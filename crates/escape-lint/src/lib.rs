//! `escape-lint` — the workspace invariant checker.
//!
//! The README's safety arguments (write-before-send durability, the
//! PPF-safe lease fence, simnet determinism) used to be enforced by
//! convention; this crate makes them machine-enforced. A minimal
//! in-repo lexer (no external deps — same offline constraint as the
//! vendor shims) walks every `crates/*/src` file and runs five rules:
//!
//! 1. **panic-freedom** — no `unwrap`/`expect`/panicking macros/
//!    unchecked indexing in non-test code of the safety-critical crates
//! 2. **deterministic-time** — `Instant::now`/`SystemTime::now` only in
//!    the designated clock module
//! 3. **write-before-send** — engine functions persist before staging
//!    sends
//! 4. **lock-discipline** — nothing blocks under a `parking_lot` guard;
//!    nesting follows the order manifest (`lock_order.txt`)
//! 5. **wire-exhaustiveness** — every `Message` variant appears in
//!    encode, decode, and the roundtrip tests; every `escape-obs::Event`
//!    variant appears in its encode and render arms and the event tests
//!
//! plus unsafe hygiene (`SAFETY:` comments, `#![deny(unsafe_code)]`).
//!
//! Violations are waivable per line with `// lint:allow(<rule>): <reason>`;
//! waivers are counted in the summary (so they cannot grow silently) and
//! must each suppress something (stale waivers are themselves findings).

#![deny(unsafe_code)]

pub mod lexer;
pub mod report;
pub mod rules;

use std::io;
use std::path::{Path, PathBuf};

pub use lexer::SourceFile;
pub use report::{apply_waivers, Finding, Report, Rule, ALL_RULES};

/// The default lock-acquisition-order manifest, compiled in from
/// `lock_order.txt` next to this crate's `Cargo.toml`.
pub fn default_lock_manifest() -> Vec<String> {
    parse_lock_manifest(include_str!("../lock_order.txt"))
}

/// Parses a manifest: one lock name per line, acquisition order top to
/// bottom, `#` comments and blank lines ignored.
pub fn parse_lock_manifest(text: &str) -> Vec<String> {
    text.lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        .map(str::to_string)
        .collect()
}

/// Runs every single-file rule over `file` and applies its waivers.
/// (The cross-file wire rule is separate: [`rules::wire::check`].)
pub fn check_file(file: &SourceFile, manifest: &[String]) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(rules::panic::check(file));
    findings.extend(rules::time::check(file));
    findings.extend(rules::wbs::check(file));
    findings.extend(rules::locks::check(file, manifest));
    findings.extend(rules::unsafety::check(file));
    if file.path.ends_with("escape-obs/src/event.rs") {
        findings.extend(rules::wire::check_events(file));
    }
    apply_waivers(file, &mut findings);
    findings
}

/// Walks `root/crates/*/src`, runs all rules, and returns the report.
///
/// # Errors
///
/// I/O errors reading the tree. Unreadable single files are reported as
/// findings rather than errors, so one bad file cannot hide the rest.
pub fn run_workspace(root: &Path) -> io::Result<Report> {
    let manifest = default_lock_manifest();
    let crates_dir = root.join("crates");
    let mut report = Report::default();
    let mut files: Vec<SourceFile> = Vec::new();

    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    for crate_dir in &crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        report.crates_checked += 1;
        let mut rs_files = Vec::new();
        collect_rs_files(&src, &mut rs_files)?;
        rs_files.sort();
        for path in rs_files {
            let display = display_path(root, &path);
            match std::fs::read_to_string(&path) {
                Ok(text) => {
                    files.push(SourceFile::parse(&display, &crate_name, &text));
                    report.files_checked += 1;
                }
                Err(e) => report.findings.push(Finding::new(
                    Rule::Panic,
                    &display,
                    1,
                    format!("unreadable source file: {e}"),
                )),
            }
        }
    }

    // Per-file rules first; wire findings are folded into the codec/
    // message files before waivers apply so they participate too.
    let message = files
        .iter()
        .position(|f| f.path.ends_with("escape-core/src/message.rs"));
    let codec = files
        .iter()
        .position(|f| f.path.ends_with("escape-wire/src/codec.rs"));
    let wire_findings = match (message, codec) {
        (Some(m), Some(c)) => rules::wire::check(&files[m], &files[c]),
        _ => vec![Finding::new(
            Rule::Wire,
            "crates/escape-wire/src/codec.rs",
            1,
            "wire rule could not find message.rs + codec.rs".to_string(),
        )],
    };

    for file in &files {
        let mut findings: Vec<Finding> = Vec::new();
        findings.extend(rules::panic::check(file));
        findings.extend(rules::time::check(file));
        findings.extend(rules::wbs::check(file));
        findings.extend(rules::locks::check(file, &manifest));
        findings.extend(rules::unsafety::check(file));
        if file.path.ends_with("/src/lib.rs") {
            findings.extend(rules::unsafety::check_crate_root(file));
        }
        if file.path.ends_with("escape-obs/src/event.rs") {
            findings.extend(rules::wire::check_events(file));
        }
        findings.extend(
            wire_findings
                .iter()
                .filter(|f| f.path == file.path)
                .cloned(),
        );
        apply_waivers(file, &mut findings);
        report.findings.append(&mut findings);
    }

    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn display_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}
