//! Findings, waiver application, and the per-rule summary.

use std::collections::BTreeSet;
use std::fmt;

use crate::lexer::SourceFile;

/// The enforced rules. `Waiver` is the meta-rule policing the waivers
/// themselves (malformed or unused ones) and cannot itself be waived.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// No `unwrap`/`expect`/panicking macros/unchecked indexing in
    /// non-test code of the safety-critical crates.
    Panic,
    /// No `Instant::now`/`SystemTime::now` outside the clock module.
    Time,
    /// Engine functions persist before they stage sends.
    WriteBeforeSend,
    /// No blocking calls under a `parking_lot` guard; acquisition order
    /// follows the manifest.
    Lock,
    /// Every `Message` variant appears in encode, decode, and roundtrip
    /// tests.
    Wire,
    /// Every `unsafe` carries a `SAFETY:` comment; every crate root
    /// carries `#![deny(unsafe_code)]`.
    Unsafe,
    /// Waiver hygiene: waivers must be well-formed and must suppress
    /// something.
    Waiver,
}

/// All rules, in summary order.
pub const ALL_RULES: [Rule; 7] = [
    Rule::Panic,
    Rule::Time,
    Rule::WriteBeforeSend,
    Rule::Lock,
    Rule::Wire,
    Rule::Unsafe,
    Rule::Waiver,
];

impl Rule {
    /// The key accepted inside `lint:allow(...)`.
    pub fn key(self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::Time => "time",
            Rule::WriteBeforeSend => "write-before-send",
            Rule::Lock => "lock",
            Rule::Wire => "wire",
            Rule::Unsafe => "unsafe",
            Rule::Waiver => "waiver",
        }
    }

    /// Human name for the summary table.
    pub fn title(self) -> &'static str {
        match self {
            Rule::Panic => "panic-freedom",
            Rule::Time => "deterministic-time",
            Rule::WriteBeforeSend => "write-before-send",
            Rule::Lock => "lock-discipline",
            Rule::Wire => "wire-exhaustiveness",
            Rule::Unsafe => "unsafe-annotation",
            Rule::Waiver => "waiver-hygiene",
        }
    }

    fn from_key(key: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.key() == key)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.title())
    }
}

/// One diagnostic: a rule tripped at a file:line.
#[derive(Clone, Debug)]
pub struct Finding {
    pub rule: Rule,
    pub path: String,
    pub line: usize,
    pub message: String,
    /// Set during waiver application.
    pub waived: bool,
}

impl Finding {
    pub fn new(rule: Rule, path: &str, line: usize, message: String) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            message,
            waived: false,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.key(),
            self.message
        )
    }
}

/// Matches findings against a file's waivers: a finding on line L of
/// rule R is waived by `// lint:allow(R): reason` on line L, or on line
/// L−1 (a comment line directly above, for code too long to annotate
/// inline). Waivers that are malformed (unknown rule, missing reason) or
/// that suppressed nothing become `Waiver`-rule findings, so stale
/// annotations cannot accumulate.
pub fn apply_waivers(file: &SourceFile, findings: &mut Vec<Finding>) {
    let mut used: BTreeSet<usize> = BTreeSet::new();
    for finding in findings.iter_mut() {
        if finding.rule == Rule::Waiver {
            continue;
        }
        for line in [finding.line, finding.line.saturating_sub(1)] {
            if let Some(waiver) = file.waivers.get(&line) {
                if waiver.rule == finding.rule.key() && waiver.has_reason {
                    finding.waived = true;
                    used.insert(line);
                    break;
                }
            }
        }
    }
    for (line, waiver) in &file.waivers {
        let message = match Rule::from_key(&waiver.rule) {
            None => Some(format!(
                "unknown rule `{}` in lint:allow (expected one of panic, time, \
                 write-before-send, lock, wire, unsafe)",
                waiver.rule
            )),
            Some(Rule::Waiver) => {
                Some("the waiver rule cannot itself be waived".to_string())
            }
            Some(_) if !waiver.has_reason => Some(format!(
                "waiver for `{}` lacks a reason — write \
                 `// lint:allow({}): <why this is safe>`",
                waiver.rule, waiver.rule
            )),
            Some(_) if !used.contains(line) => Some(format!(
                "unused waiver for `{}` — nothing on this line trips that rule",
                waiver.rule
            )),
            Some(_) => None,
        };
        if let Some(message) = message {
            findings.push(Finding::new(Rule::Waiver, &file.path, *line, message));
        }
    }
}

/// The full lint result across a run.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_checked: usize,
    pub crates_checked: usize,
}

impl Report {
    /// Unwaived findings — the ones that fail the build.
    pub fn violations(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    /// True when nothing unwaived remains.
    pub fn is_clean(&self) -> bool {
        self.violations().next().is_none()
    }

    fn count(&self, rule: Rule, waived: bool) -> usize {
        self.findings
            .iter()
            .filter(|f| f.rule == rule && f.waived == waived)
            .count()
    }

    /// Renders diagnostics plus the per-rule violation/waiver table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut sorted: Vec<&Finding> = self.violations().collect();
        sorted.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
        for finding in &sorted {
            out.push_str(&finding.to_string());
            out.push('\n');
        }
        if !sorted.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!(
            "escape-lint: {} files across {} crates\n\n",
            self.files_checked, self.crates_checked
        ));
        out.push_str(&format!(
            "{:<20} {:>10} {:>8}\n",
            "rule", "violations", "waived"
        ));
        for rule in ALL_RULES {
            out.push_str(&format!(
                "{:<20} {:>10} {:>8}\n",
                rule.title(),
                self.count(rule, false),
                self.count(rule, true),
            ));
        }
        let waived_total: usize = self.findings.iter().filter(|f| f.waived).count();
        let violation_total = self.findings.len() - waived_total;
        out.push('\n');
        if violation_total == 0 {
            out.push_str(&format!(
                "OK: no unwaived violations ({waived_total} waived)\n"
            ));
        } else {
            out.push_str(&format!(
                "FAIL: {violation_total} unwaived violation(s), {waived_total} waived\n"
            ));
        }
        out
    }
}
