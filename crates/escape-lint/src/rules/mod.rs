//! The rule passes. Each submodule checks one invariant and returns
//! [`Finding`]s; waiver application happens afterwards in the driver.

pub mod locks;
pub mod panic;
pub mod time;
pub mod unsafety;
pub mod wbs;
pub mod wire;

use crate::lexer::{SourceFile, Token, TokenKind};

/// Token text, or `""` out of range.
pub(crate) fn text(file: &SourceFile, i: usize) -> &str {
    file.tokens.get(i).map(|t| file.tok_str(t)).unwrap_or("")
}

/// Is token `i` the punctuation byte `c`?
pub(crate) fn is_punct(file: &SourceFile, i: usize, c: u8) -> bool {
    matches!(file.tokens.get(i), Some(t) if t.kind == TokenKind::Punct(c))
}

/// Is token `i` an identifier?
pub(crate) fn is_ident(file: &SourceFile, i: usize) -> bool {
    matches!(file.tokens.get(i), Some(t) if t.kind == TokenKind::Ident)
}

/// The token at `i`, if any.
pub(crate) fn tok(file: &SourceFile, i: usize) -> Option<&Token> {
    file.tokens.get(i)
}

/// Scans `file`'s tokens within `span` for the sequence
/// `first :: second` (path reference like `Message::AppendEntries`).
pub(crate) fn contains_path(
    file: &SourceFile,
    span: (usize, usize),
    first: &str,
    second: &str,
) -> bool {
    let toks = &file.tokens;
    (0..toks.len()).any(|i| {
        let t = &toks[i];
        t.start >= span.0
            && t.end <= span.1
            && t.kind == TokenKind::Ident
            && file.tok_str(t) == first
            && is_punct(file, i + 1, b':')
            && is_punct(file, i + 2, b':')
            && text(file, i + 3) == second
    })
}

/// Scans a byte span for a bare identifier.
pub(crate) fn contains_ident(file: &SourceFile, span: (usize, usize), name: &str) -> bool {
    file.tokens.iter().any(|t| {
        t.start >= span.0
            && t.end <= span.1
            && t.kind == TokenKind::Ident
            && file.tok_str(t) == name
    })
}
