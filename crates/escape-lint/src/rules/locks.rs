//! Rule 4 — lock discipline: no blocking call under a `parking_lot`
//! guard, and nested acquisitions follow the declared order manifest.
//!
//! The mesh's whole latency story rests on "nothing blocks under a peer
//! lock": a connect or a blocking write while holding `link` would park
//! every group's `send_frame` to that peer. The checker models guard
//! lifetimes conservatively: a `let`-bound guard lives to the end of its
//! enclosing block (or an explicit `drop(guard)`), an unbound temporary
//! to the end of its statement. Blocking is recognized by method name —
//! a syntactic heuristic, so a *non-blocking* write on a nonblocking
//! socket under a guard needs a waiver stating exactly that.

use crate::lexer::{SourceFile, TokenKind};
use crate::report::{Finding, Rule};
use crate::rules::{is_ident, is_punct, text, tok};

/// Calls that may block the calling thread.
const BLOCKING: [&str; 20] = [
    "write_all",
    "write_vectored",
    "write_fmt",
    "flush",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "connect",
    "connect_timeout",
    "accept",
    "incoming",
    "join",
    "recv",
    "recv_timeout",
    "send_timeout",
    "sleep",
    "sync_all",
    "sync_data",
    "wait",
    "park",
];

/// A live guard: where it was acquired, where it dies, what it locks.
struct Guard {
    acquired_at: usize,
    scope_end: usize,
    lock_name: String,
    line: usize,
}

pub fn check(file: &SourceFile, manifest: &[String]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let toks = &file.tokens;
    let mut guards: Vec<Guard> = Vec::new();

    // Collect guard acquisitions first (file order == acquisition order
    // within any one function, which is all the nesting check needs).
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || file.is_test_code(t.start) {
            continue;
        }
        let s = file.tok_str(t);
        // Zero-argument `.lock()` / `.read()` / `.write()` — the
        // parking_lot guard constructors. (io::Read/Write::read/write
        // always take arguments, so zero-arg keeps them out.)
        let is_acquire = (s == "lock" || s == "read" || s == "write")
            && i > 0
            && is_punct(file, i - 1, b'.')
            && is_punct(file, i + 1, b'(')
            && is_punct(file, i + 2, b')');
        if !is_acquire {
            continue;
        }
        let lock_name = receiver_name(file, i - 1);
        let receiver_start = receiver_start(file, i - 1);
        // A guard is only *named* when the `.lock()` call itself ends the
        // initializer (`let g = m.lock();`). With further chaining
        // (`let v = m.lock().take();`) the guard is a temporary that dies
        // at the semicolon — only the chained result is bound.
        let binds_guard = is_punct(file, i + 3, b';');
        let scope_end = if let Some(name) =
            binds_guard.then(|| let_binding(file, receiver_start)).flatten()
        {
            // Named guard: lives to the end of the enclosing block,
            // unless an explicit drop(name) cuts it short.
            let block_end = file
                .enclosing_block(t.start)
                .map(|(_, close)| close)
                .unwrap_or(file.text.len());
            find_drop(file, t.start, block_end, &name).unwrap_or(block_end)
        } else {
            // Temporary: dies at the end of the statement.
            statement_end(file, i)
        };
        guards.push(Guard {
            acquired_at: t.start,
            scope_end,
            lock_name,
            line: t.line,
        });
    }

    // Blocking calls under a live guard.
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || file.is_test_code(t.start) {
            continue;
        }
        let s = file.tok_str(t);
        let is_call = BLOCKING.contains(&s)
            && is_punct(file, i + 1, b'(')
            && i > 0
            && (is_punct(file, i - 1, b'.') || is_punct(file, i - 1, b':'));
        if !is_call {
            continue;
        }
        for guard in &guards {
            if t.start > guard.acquired_at && t.start < guard.scope_end {
                findings.push(Finding::new(
                    Rule::Lock,
                    &file.path,
                    t.line,
                    format!(
                        "{s}() may block while the `{}` guard (line {}) is held — \
                         restructure to drop the guard first, or waive with why \
                         this cannot block",
                        guard.lock_name, guard.line
                    ),
                ));
            }
        }
    }

    // Nested acquisition order + manifest membership.
    for (gi, guard) in guards.iter().enumerate() {
        if !manifest.iter().any(|m| m == &guard.lock_name) {
            findings.push(Finding::new(
                Rule::Lock,
                &file.path,
                guard.line,
                format!(
                    "lock `{}` is not in the acquisition-order manifest \
                     (crates/escape-lint/lock_order.txt) — declare where it \
                     sits in the order",
                    guard.lock_name
                ),
            ));
        }
        for outer in &guards[..gi] {
            let nested = guard.acquired_at > outer.acquired_at
                && guard.acquired_at < outer.scope_end;
            if !nested {
                continue;
            }
            let outer_rank = manifest.iter().position(|m| m == &outer.lock_name);
            let inner_rank = manifest.iter().position(|m| m == &guard.lock_name);
            let ordered = match (outer_rank, inner_rank) {
                (Some(o), Some(i)) => o < i,
                _ => false, // unranked nesting is already reported above
            };
            if !ordered {
                findings.push(Finding::new(
                    Rule::Lock,
                    &file.path,
                    guard.line,
                    format!(
                        "`{}` acquired while `{}` (line {}) is held — violates \
                         the declared acquisition order",
                        guard.lock_name, outer.lock_name, outer.line
                    ),
                ));
            }
        }
    }

    findings
}

/// Walks the receiver chain backwards from the `.` before `lock` and
/// names the lock: the nearest field/variable identifier, skipping tuple
/// indexes and `[...]`/`(...)` groups. `self.peers[&id].1.lock()` names
/// `peers`; `link.lock()` names `link`.
fn receiver_name(file: &SourceFile, dot: usize) -> String {
    let mut i = dot;
    while i > 0 {
        i -= 1;
        match tok(file, i).map(|t| t.kind) {
            Some(TokenKind::Ident) => {
                let s = text(file, i);
                if s == "self" {
                    break;
                }
                return s.to_string();
            }
            Some(TokenKind::Number) => {} // tuple index
            Some(TokenKind::Punct(b'.')) => {}
            Some(TokenKind::Punct(b']')) => {
                let mut depth = 1;
                while i > 0 && depth > 0 {
                    i -= 1;
                    match tok(file, i).map(|t| t.kind) {
                        Some(TokenKind::Punct(b']')) => depth += 1,
                        Some(TokenKind::Punct(b'[')) => depth -= 1,
                        _ => {}
                    }
                }
            }
            Some(TokenKind::Punct(b')')) => {
                let mut depth = 1;
                while i > 0 && depth > 0 {
                    i -= 1;
                    match tok(file, i).map(|t| t.kind) {
                        Some(TokenKind::Punct(b')')) => depth += 1,
                        Some(TokenKind::Punct(b'(')) => depth -= 1,
                        _ => {}
                    }
                }
            }
            _ => break,
        }
    }
    "<unknown>".to_string()
}

/// Token index where the receiver chain begins (for `let` detection).
fn receiver_start(file: &SourceFile, dot: usize) -> usize {
    let mut i = dot;
    while i > 0 {
        let prev = i - 1;
        match tok(file, prev).map(|t| t.kind) {
            Some(TokenKind::Ident) | Some(TokenKind::Number) => i = prev,
            Some(TokenKind::Punct(b'.')) => i = prev,
            Some(TokenKind::Punct(b']')) | Some(TokenKind::Punct(b')')) => {
                let open = if is_punct(file, prev, b']') { b'[' } else { b'(' };
                let close = if open == b'[' { b']' } else { b')' };
                let mut depth = 1;
                let mut j = prev;
                while j > 0 && depth > 0 {
                    j -= 1;
                    if is_punct(file, j, close) {
                        depth += 1;
                    } else if is_punct(file, j, open) {
                        depth -= 1;
                    }
                }
                i = j;
            }
            Some(TokenKind::Punct(b'&')) | Some(TokenKind::Punct(b'*')) => i = prev,
            _ => break,
        }
    }
    i
}

/// If the receiver chain is directly bound by `let [mut] NAME = ...`,
/// returns NAME.
fn let_binding(file: &SourceFile, receiver_start: usize) -> Option<String> {
    if receiver_start < 2 || !is_punct(file, receiver_start - 1, b'=') {
        return None;
    }
    // `==` is a comparison, not a binding.
    if receiver_start >= 2 && is_punct(file, receiver_start - 2, b'=') {
        return None;
    }
    let name_i = receiver_start - 2;
    if !is_ident(file, name_i) {
        return None;
    }
    let name = text(file, name_i).to_string();
    let kw = text(file, name_i.wrapping_sub(1));
    let kw2 = text(file, name_i.wrapping_sub(2));
    if kw == "let" || (kw == "mut" && kw2 == "let") {
        Some(name)
    } else {
        None
    }
}

/// Byte offset of an explicit `drop(name)` between `from` and `until`.
fn find_drop(file: &SourceFile, from: usize, until: usize, name: &str) -> Option<usize> {
    let toks = &file.tokens;
    (0..toks.len()).find_map(|i| {
        let t = &toks[i];
        (t.start > from
            && t.start < until
            && t.kind == TokenKind::Ident
            && file.tok_str(t) == "drop"
            && is_punct(file, i + 1, b'(')
            && text(file, i + 2) == name
            && is_punct(file, i + 3, b')'))
        .then_some(t.start)
    })
}

/// Byte offset ending the statement containing token `i`: the next `;`
/// or closing `}` at or above the token's nesting level.
fn statement_end(file: &SourceFile, i: usize) -> usize {
    let toks = &file.tokens;
    let mut depth: i32 = 0;
    for t in toks.iter().skip(i) {
        match t.kind {
            TokenKind::Punct(b'(') | TokenKind::Punct(b'[') | TokenKind::Punct(b'{') => {
                depth += 1
            }
            TokenKind::Punct(b')') | TokenKind::Punct(b']') | TokenKind::Punct(b'}') => {
                depth -= 1;
                if depth < 0 {
                    return t.start;
                }
            }
            TokenKind::Punct(b';') if depth <= 0 => return t.start,
            _ => {}
        }
    }
    file.text.len()
}
