//! Rule 2 — deterministic time: `Instant::now()` / `SystemTime::now()`
//! are forbidden outside the designated clock module.
//!
//! Everything the engine decides is a function of the logical `Time` it
//! is handed; the simulator replays histories deterministically because
//! of it, and the leader-lease safety argument depends on every
//! wall-clock read flowing through one auditable choke point
//! (`escape-transport::clock`). A stray `Instant::now()` re-introduces
//! ambient time and silently invalidates both.

use crate::lexer::SourceFile;
use crate::report::{Finding, Rule};
use crate::rules::{is_punct, text};

/// Files allowed to touch the machine clock directly.
pub const CLOCK_MODULES: [&str; 1] = ["crates/escape-transport/src/clock.rs"];

pub fn check(file: &SourceFile) -> Vec<Finding> {
    if CLOCK_MODULES.iter().any(|m| file.path.ends_with(m)) {
        return Vec::new();
    }
    let mut findings = Vec::new();
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if file.is_test_code(t.start) {
            continue;
        }
        let s = file.tok_str(t);
        if (s == "Instant" || s == "SystemTime")
            && is_punct(file, i + 1, b':')
            && is_punct(file, i + 2, b':')
            && text(file, i + 3) == "now"
        {
            findings.push(Finding::new(
                Rule::Time,
                &file.path,
                t.line,
                format!(
                    "{s}::now() outside the clock module — route through \
                     escape_transport::clock, or waive where wall-clock output \
                     is the point"
                ),
            ));
        }
    }
    findings
}
