//! Rule 3 — write-before-send: engine functions persist before they
//! stage outbound messages.
//!
//! The durability argument from PR 2: a node must never tell a peer
//! about state it could forget in a crash. In the sans-IO engine that
//! means any function that calls a `persist_*` helper must make that
//! call at a byte offset *before* any send-staging call. The check is a
//! heuristic over source order (good enough because the engine stages
//! sends linearly — no callbacks), with a waiver escape hatch for the
//! refusal paths that reply without mutating anything.
//!
//! A second sub-check pins the hard-state invariant directly: an
//! assignment to `current_term` or `voted_for` must be followed (same
//! function) by a `persist_hard_state` call — double-voting after a
//! restart is the one mistake Raft never forgives.

use crate::lexer::SourceFile;
use crate::report::{Finding, Rule};
use crate::rules::{is_punct, text};

/// Durability helpers — reaching storage through anything else is new
/// code the lint should be taught about.
const PERSIST: [&str; 7] = [
    "persist_hard_state",
    "persist_last_entry",
    "persist_tail_entries",
    "persist_appended",
    "persist_current_config",
    "persist_snapshot",
    "sync_storage",
];

/// Calls that stage outbound messages onto the action list.
const STAGE: [&str; 6] = [
    "send",
    "send_heartbeat",
    "heartbeat_round",
    "pump_peer",
    "flush_replication",
    "confirm_round",
];

/// Only the engine proper is in scope.
fn in_scope(file: &SourceFile) -> bool {
    file.crate_name == "escape-core" && file.path.contains("/engine/")
}

pub fn check(file: &SourceFile) -> Vec<Finding> {
    if !in_scope(file) {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for func in &file.functions {
        let Some((open, close)) = func.body else { continue };
        if file.is_test_code(func.start) {
            continue;
        }
        let mut persists: Vec<usize> = Vec::new(); // byte offsets
        let mut stages: Vec<(usize, usize)> = Vec::new(); // (offset, line)
        let mut hard_state_writes: Vec<(usize, usize, String)> = Vec::new();
        let toks = &file.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.start <= open || t.end >= close {
                continue;
            }
            let s = file.tok_str(t);
            if PERSIST.contains(&s) && is_punct(file, i + 1, b'(') {
                persists.push(t.start);
            } else if STAGE.contains(&s)
                && is_punct(file, i + 1, b'(')
                && i > 0
                && is_punct(file, i - 1, b'.')
                && func.name != s
            {
                stages.push((t.start, t.line));
            } else if s == "Send"
                && i >= 2
                && is_punct(file, i - 1, b':')
                && is_punct(file, i - 2, b':')
                && text(file, i - 3) == "Action"
            {
                // Direct `Action::Send` construction (the `send` helper
                // itself, or anything bypassing it).
                stages.push((t.start, t.line));
            } else if (s == "current_term" || s == "voted_for")
                && is_punct(file, i + 1, b'=')
                && !is_punct(file, i + 2, b'=')
                && i > 0
                && is_punct(file, i - 1, b'.')
            {
                hard_state_writes.push((t.start, t.line, s.to_string()));
            }
        }

        // (a) source-order check: no staging before the first persist.
        if let Some(&first_persist) = persists.iter().min() {
            for &(offset, line) in &stages {
                if offset < first_persist {
                    findings.push(Finding::new(
                        Rule::WriteBeforeSend,
                        &file.path,
                        line,
                        format!(
                            "`{}` stages an outbound message before its first \
                             persist call — write-before-send requires durability \
                             first (waive if this path mutates nothing)",
                            func.name
                        ),
                    ));
                }
            }
        }

        // (b) hard-state writes need a later persist_hard_state.
        for (offset, line, field) in &hard_state_writes {
            let persisted_later = file.tokens.iter().enumerate().any(|(i, t)| {
                t.start > *offset
                    && t.end < close
                    && file.tok_str(t) == "persist_hard_state"
                    && is_punct(file, i + 1, b'(')
            });
            if !persisted_later {
                findings.push(Finding::new(
                    Rule::WriteBeforeSend,
                    &file.path,
                    *line,
                    format!(
                        "`{}` assigns `{field}` without a later \
                         persist_hard_state() in the same function — a crash \
                         here can double-vote",
                        func.name
                    ),
                ));
            }
        }
    }
    findings
}
