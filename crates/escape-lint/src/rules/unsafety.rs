//! Unsafe hygiene: every `unsafe` token (test code included) must carry
//! a `SAFETY:` comment on the same line or within the three lines above
//! it, and every crate root must declare `#![deny(unsafe_code)]` so new
//! unsafe can only enter deliberately (`#[allow(unsafe_code)]` at the
//! site — which this rule then forces to justify).

use crate::lexer::{SourceFile, TokenKind};
use crate::report::{Finding, Rule};
use crate::rules::{is_punct, text};

pub fn check(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for t in &file.tokens {
        if t.kind != TokenKind::Ident || file.tok_str(t) != "unsafe" {
            continue;
        }
        let line = t.line;
        let annotated = file
            .safety_lines
            .iter()
            .any(|&sl| sl <= line && line.saturating_sub(sl) <= 3);
        if !annotated {
            findings.push(Finding::new(
                Rule::Unsafe,
                &file.path,
                line,
                "`unsafe` without a `// SAFETY:` comment (same line or the three \
                 lines above)"
                    .to_string(),
            ));
        }
    }
    findings
}

/// Crate-root check: `lib.rs` must carry `#![deny(unsafe_code)]`.
pub fn check_crate_root(file: &SourceFile) -> Vec<Finding> {
    let toks = &file.tokens;
    let denies = (0..toks.len()).any(|i| {
        is_punct(file, i, b'#')
            && is_punct(file, i + 1, b'!')
            && is_punct(file, i + 2, b'[')
            && text(file, i + 3) == "deny"
            && is_punct(file, i + 4, b'(')
            && text(file, i + 5) == "unsafe_code"
    });
    if denies {
        Vec::new()
    } else {
        vec![Finding::new(
            Rule::Unsafe,
            &file.path,
            1,
            "crate root lacks `#![deny(unsafe_code)]`".to_string(),
        )]
    }
}
