//! Rule 5 — wire exhaustiveness: every `Message` variant must appear in
//! the codec's encode arm, decode arm, and its roundtrip tests; the
//! `Envelope` struct's fields likewise in both codec directions.
//!
//! This is the cross-file consistency check the compiler cannot do: a
//! new variant added to `escape-core::message::Message` makes the
//! codec's `match` non-exhaustive (compiler catches encode) but nothing
//! forces a decode arm tag or a roundtrip test — a silent
//! forward-compatibility hole on the wire.
//!
//! The same rule covers the observability taxonomy ([`check_events`]):
//! every `escape-obs::Event` variant must appear in `fn encode`,
//! `fn render`, and the file's tests. The exhaustive `match`es there
//! keep the compiler honest for encode/render, but nothing else forces a
//! new event into the test corpus — and an untested variant is exactly
//! the one whose encoding silently changes and breaks the byte-identical
//! determinism comparison.

use crate::lexer::{SourceFile, TokenKind};
use crate::report::{Finding, Rule};
use crate::rules::{contains_ident, contains_path, is_punct, text};

/// Checks `codec` (escape-wire/src/codec.rs) against the `Message` enum
/// declared in `message` (escape-core/src/message.rs).
pub fn check(message: &SourceFile, codec: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();

    let variants = enum_variants(message, "Message");
    if variants.is_empty() {
        findings.push(Finding::new(
            Rule::Wire,
            &message.path,
            1,
            "could not locate `enum Message` — the wire rule has nothing to \
             check against"
                .to_string(),
        ));
        return findings;
    }

    let encode = impl_block(codec, "Encode", "Message");
    let decode = impl_block(codec, "Decode", "Message");
    let tests: Vec<(usize, usize)> = codec.test_regions.clone();

    let mut require_block = |span: Option<(usize, usize)>, what: &str| -> Option<(usize, usize)> {
        if span.is_none() {
            findings.push(Finding::new(
                Rule::Wire,
                &codec.path,
                1,
                format!("could not locate `{what}` in the codec"),
            ));
        }
        span
    };
    let encode = require_block(encode, "impl Encode for Message");
    let decode = require_block(decode, "impl Decode for Message");

    for (variant, line) in &variants {
        if let Some(span) = encode {
            if !contains_path(codec, span, "Message", variant) {
                findings.push(Finding::new(
                    Rule::Wire,
                    &codec.path,
                    codec.line_of(span.0),
                    format!("Message::{variant} has no encode arm"),
                ));
            }
        }
        if let Some(span) = decode {
            if !contains_path(codec, span, "Message", variant) {
                findings.push(Finding::new(
                    Rule::Wire,
                    &codec.path,
                    codec.line_of(span.0),
                    format!("Message::{variant} has no decode arm"),
                ));
            }
        }
        let tested = tests.iter().any(|span| contains_ident(codec, *span, variant));
        if !tested {
            findings.push(Finding::new(
                Rule::Wire,
                &message.path,
                *line,
                format!(
                    "Message::{variant} never appears in the codec's roundtrip \
                     tests"
                ),
            ));
        }
    }

    // Envelope: every field must survive both directions, and the tests
    // must roundtrip the struct itself.
    let fields = struct_fields(codec, "Envelope");
    let env_encode = impl_block(codec, "Encode", "Envelope");
    let env_decode = impl_block(codec, "Decode", "Envelope");
    for (field, line) in &fields {
        for (dir, span) in [("encode", env_encode), ("decode", env_decode)] {
            match span {
                Some(span) if contains_ident(codec, span, field) => {}
                Some(span) => findings.push(Finding::new(
                    Rule::Wire,
                    &codec.path,
                    codec.line_of(span.0),
                    format!("Envelope field `{field}` is missing from {dir}"),
                )),
                None => findings.push(Finding::new(
                    Rule::Wire,
                    &codec.path,
                    *line,
                    format!("no {dir} impl found for Envelope"),
                )),
            }
        }
    }
    if !fields.is_empty()
        && !tests.iter().any(|span| contains_ident(codec, *span, "Envelope"))
    {
        findings.push(Finding::new(
            Rule::Wire,
            &codec.path,
            1,
            "Envelope never appears in the codec's roundtrip tests".to_string(),
        ));
    }

    findings
}

/// Checks `events` (escape-obs/src/event.rs): every `Event` variant must
/// appear in `fn encode`, `fn render`, and this file's tests.
pub fn check_events(events: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();

    let variants = enum_variants(events, "Event");
    if variants.is_empty() {
        findings.push(Finding::new(
            Rule::Wire,
            &events.path,
            1,
            "could not locate `enum Event` — the event rule has nothing to \
             check against"
                .to_string(),
        ));
        return findings;
    }

    let mut require_fn = |name: &str| -> Option<(usize, usize)> {
        let span = fn_block(events, name);
        if span.is_none() {
            findings.push(Finding::new(
                Rule::Wire,
                &events.path,
                1,
                format!("could not locate `fn {name}` for the Event taxonomy"),
            ));
        }
        span
    };
    let encode = require_fn("encode");
    let render = require_fn("render");

    for (variant, line) in &variants {
        for (what, span) in [("encode", encode), ("render", render)] {
            if let Some(span) = span {
                if !contains_path(events, span, "Event", variant) {
                    findings.push(Finding::new(
                        Rule::Wire,
                        &events.path,
                        events.line_of(span.0),
                        format!("Event::{variant} has no {what} arm"),
                    ));
                }
            }
        }
        let tested = events
            .test_regions
            .iter()
            .any(|span| contains_ident(events, *span, variant));
        if !tested {
            findings.push(Finding::new(
                Rule::Wire,
                &events.path,
                *line,
                format!("Event::{variant} never appears in this file's tests"),
            ));
        }
    }

    findings
}

/// Variant names (and lines) of `enum <name> { ... }`.
pub fn enum_variants(file: &SourceFile, name: &str) -> Vec<(String, usize)> {
    let Some((open, close)) = item_block(file, "enum", name) else {
        return Vec::new();
    };
    names_at_depth_zero(file, open, close, /*fields=*/ false)
}

/// Field names (and lines) of `struct <name> { ... }`.
pub fn struct_fields(file: &SourceFile, name: &str) -> Vec<(String, usize)> {
    let Some((open, close)) = item_block(file, "struct", name) else {
        return Vec::new();
    };
    names_at_depth_zero(file, open, close, /*fields=*/ true)
}

/// The `{..}` span of `<kw> <name> { ... }` (enum/struct/mod).
fn item_block(file: &SourceFile, kw: &str, name: &str) -> Option<(usize, usize)> {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if toks[i].kind == TokenKind::Ident
            && file.tok_str(&toks[i]) == kw
            && text(file, i + 1) == name
        {
            // Scan past generics/where to the opening brace.
            for t in toks.iter().skip(i + 2) {
                match t.kind {
                    TokenKind::Punct(b'{') => {
                        return file
                            .brace_pairs
                            .iter()
                            .find(|&&(o, _)| o == t.start)
                            .map(|&(o, c)| (o, c));
                    }
                    TokenKind::Punct(b';') => break,
                    _ => {}
                }
            }
        }
    }
    None
}

/// The `{..}` span of the first `fn <name>(..) .. { ... }` in the file.
fn fn_block(file: &SourceFile, name: &str) -> Option<(usize, usize)> {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if toks[i].kind == TokenKind::Ident
            && file.tok_str(&toks[i]) == "fn"
            && text(file, i + 1) == name
        {
            // Scan past the parameter list and return type to the body.
            let mut parens = 0i32;
            for t in toks.iter().skip(i + 2) {
                match t.kind {
                    TokenKind::Punct(b'(') => parens += 1,
                    TokenKind::Punct(b')') => parens -= 1,
                    TokenKind::Punct(b'{') if parens == 0 => {
                        return file
                            .brace_pairs
                            .iter()
                            .find(|&&(o, _)| o == t.start)
                            .map(|&(o, c)| (o, c));
                    }
                    TokenKind::Punct(b';') if parens == 0 => break,
                    _ => {}
                }
            }
        }
    }
    None
}

/// The `{..}` span of `impl <trait> for <type>`.
pub fn impl_block(file: &SourceFile, trait_name: &str, type_name: &str) -> Option<(usize, usize)> {
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokenKind::Ident
            && file.tok_str(t) == "impl"
            && text(file, i + 1) == trait_name
            && text(file, i + 2) == "for"
            && text(file, i + 3) == type_name
            && is_punct(file, i + 4, b'{')
        {
            let open = file.tokens[i + 4].start;
            return file
                .brace_pairs
                .iter()
                .find(|&&(o, _)| o == open)
                .map(|&(o, c)| (o, c));
        }
    }
    None
}

/// Identifiers declared at depth 0 inside a brace span: enum variants
/// (first ident of each `,`-separated arm) or struct fields (idents
/// directly followed by `:`). Attribute groups are skipped.
fn names_at_depth_zero(
    file: &SourceFile,
    open: usize,
    close: usize,
    fields: bool,
) -> Vec<(String, usize)> {
    let toks = &file.tokens;
    let mut names = Vec::new();
    let mut depth: i32 = 0;
    let mut expecting = true; // at a variant/field boundary
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.start <= open || t.end >= close {
            i += 1;
            continue;
        }
        match t.kind {
            // Skip whole attribute groups.
            TokenKind::Punct(b'#') if is_punct(file, i + 1, b'[') => {
                let mut d = 1;
                i += 2;
                while i < toks.len() && d > 0 {
                    match toks[i].kind {
                        TokenKind::Punct(b'[') => d += 1,
                        TokenKind::Punct(b']') => d -= 1,
                        _ => {}
                    }
                    i += 1;
                }
                continue;
            }
            TokenKind::Punct(b'{') | TokenKind::Punct(b'(') | TokenKind::Punct(b'[') => {
                depth += 1
            }
            TokenKind::Punct(b'}') | TokenKind::Punct(b')') | TokenKind::Punct(b']') => {
                depth -= 1
            }
            TokenKind::Punct(b',') if depth == 0 => expecting = true,
            TokenKind::Ident if depth == 0 && expecting => {
                let s = file.tok_str(t);
                if s == "pub" || s == "crate" || s == "in" || s == "super" {
                    // visibility qualifiers — keep expecting the name
                } else if !fields || is_punct(file, i + 1, b':') {
                    names.push((s.to_string(), t.line));
                    expecting = false;
                } else {
                    expecting = false;
                }
            }
            _ => {}
        }
        i += 1;
    }
    names
}
