//! Rule 1 — panic-freedom: no `unwrap`/`expect`/panicking macros/
//! unchecked indexing in non-test code of the safety-critical crates.
//!
//! A panic on the replication or failover path is the degraded-path bug
//! this whole lint exists for: the node dies exactly when the protocol
//! needed it to answer. Genuinely-fatal situations (a node that cannot
//! persist its vote must stop) are allowed through explicit
//! `// lint:allow(panic): <reason>` waivers, which the summary counts so
//! they cannot grow silently.

use crate::lexer::{SourceFile, TokenKind};
use crate::report::{Finding, Rule};
use crate::rules::{is_punct, text};

/// Crates whose non-test code must be panic-free.
pub const SCOPE: [&str; 4] = [
    "escape-core",
    "escape-storage",
    "escape-transport",
    "escape-wire",
];

const PANIC_MACROS: [&str; 4] = ["panic", "todo", "unimplemented", "unreachable"];

/// Keywords that may directly precede `[` without it being an index
/// expression (array literals, mostly).
const NON_INDEX_KEYWORDS: [&str; 20] = [
    "return", "in", "if", "else", "match", "break", "continue", "move", "mut",
    "ref", "as", "loop", "while", "for", "where", "dyn", "impl", "const",
    "let", "use",
];

pub fn check(file: &SourceFile) -> Vec<Finding> {
    if !SCOPE.contains(&file.crate_name.as_str()) {
        return Vec::new();
    }
    let mut findings = Vec::new();
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if file.is_test_code(t.start) {
            continue;
        }
        match t.kind {
            TokenKind::Ident => {
                let s = file.tok_str(t);
                if (s == "unwrap" || s == "expect")
                    && i > 0
                    && is_punct(file, i - 1, b'.')
                    && is_punct(file, i + 1, b'(')
                {
                    findings.push(Finding::new(
                        Rule::Panic,
                        &file.path,
                        t.line,
                        format!(
                            ".{s}() can panic — propagate a typed error, or waive \
                             with `// lint:allow(panic): <reason>`"
                        ),
                    ));
                } else if PANIC_MACROS.contains(&s) && is_punct(file, i + 1, b'!') {
                    findings.push(Finding::new(
                        Rule::Panic,
                        &file.path,
                        t.line,
                        format!("{s}! in non-test code — return an error, or waive"),
                    ));
                }
            }
            TokenKind::Punct(b'[') if i > 0 => {
                let prev = &toks[i - 1];
                let indexes_expr = match prev.kind {
                    TokenKind::Punct(b')') | TokenKind::Punct(b']') => true,
                    TokenKind::Ident => {
                        !NON_INDEX_KEYWORDS.contains(&file.tok_str(prev))
                    }
                    _ => false,
                };
                if indexes_expr {
                    findings.push(Finding::new(
                        Rule::Panic,
                        &file.path,
                        t.line,
                        format!(
                            "indexing `{}[..]` can panic out of bounds — prefer \
                             .get()/.first()/.last(), or waive with a bounds argument",
                            text(file, i - 1)
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
    findings
}
