//! A minimal Rust lexer: enough structure to enforce the workspace
//! invariants, nothing more.
//!
//! Two passes over the raw source:
//!
//! 1. **Masking** — comments, string/char literals are blanked to spaces
//!    (newlines preserved, so byte offsets and line numbers survive).
//!    While masking, line comments are harvested for `lint:allow(...)`
//!    waivers and `SAFETY:` annotations.
//! 2. **Tokenizing** — the masked text is split into identifier, number,
//!    and single-character punctuation tokens, each carrying its byte
//!    span and line.
//!
//! On top of the token stream the lexer tracks brace pairs, `fn` bodies,
//! and `#[test]` / `#[cfg(test)]` regions, which is all the rule passes
//! need. The grammar subset is deliberately small: it covers the Rust
//! this workspace writes (no const-generic brace expressions, no macros
//! defining items the rules care about).

use std::collections::BTreeMap;

/// One token of the masked source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: usize,
    /// Classification.
    pub kind: TokenKind,
}

/// Token classification — only as fine as the rules need.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// `[A-Za-z_][A-Za-z0-9_]*` — keywords included.
    Ident,
    /// A numeric literal (integer or float, any base).
    Number,
    /// A single punctuation byte.
    Punct(u8),
}

/// A `// lint:allow(<rule>): <reason>` waiver found during masking.
#[derive(Clone, Debug)]
pub struct Waiver {
    /// 1-based line the waiver comment sits on.
    pub line: usize,
    /// The rule key inside the parentheses, e.g. `panic`.
    pub rule: String,
    /// Whether a non-empty reason follows the closing `):`.
    pub has_reason: bool,
}

/// A function item: its name and (if present) body byte span.
#[derive(Clone, Debug)]
pub struct Function {
    /// The identifier after `fn`.
    pub name: String,
    /// Byte offset of the `fn` keyword.
    pub start: usize,
    /// `(open_brace, close_brace)` byte offsets of the body, if the
    /// function has one (trait-method declarations do not).
    pub body: Option<(usize, usize)>,
}

/// A fully lexed source file plus the structure the rules consume.
#[derive(Debug)]
pub struct SourceFile {
    /// Display path (workspace-relative where possible).
    pub path: String,
    /// The crate this file belongs to (e.g. `escape-core`).
    pub crate_name: String,
    /// Original text.
    pub text: String,
    /// Same length as `text`, with comments and literals blanked.
    pub masked: Vec<u8>,
    /// Token stream over `masked`.
    pub tokens: Vec<Token>,
    /// Waivers by line (at most one per line — one line comment per line).
    pub waivers: BTreeMap<usize, Waiver>,
    /// Lines whose comment carries a `SAFETY:` annotation.
    pub safety_lines: Vec<usize>,
    /// `{`→`}` byte-offset pairs, innermost discoverable by scanning.
    pub brace_pairs: Vec<(usize, usize)>,
    /// Every `fn` item in the file.
    pub functions: Vec<Function>,
    /// Byte spans of `#[test]` items and `#[cfg(test)]`-gated items.
    pub test_regions: Vec<(usize, usize)>,
    /// True when the whole file is test code (`tests.rs`, `tests/` dirs).
    pub all_test: bool,
}

impl SourceFile {
    /// Lexes `text` as the file `path` belonging to `crate_name`.
    pub fn parse(path: &str, crate_name: &str, text: &str) -> SourceFile {
        let all_test = path.ends_with("/tests.rs")
            || path.ends_with("\\tests.rs")
            || path.contains("/tests/")
            || path.ends_with("/test_util.rs");
        let (masked, waivers, safety_lines) = mask(text);
        let tokens = tokenize(&masked);
        let brace_pairs = match_braces(&masked);
        let functions = find_functions(&masked, &tokens, &brace_pairs);
        let test_regions = find_test_regions(&masked, &tokens, &brace_pairs);
        SourceFile {
            path: path.to_string(),
            crate_name: crate_name.to_string(),
            text: text.to_string(),
            masked,
            tokens,
            waivers,
            safety_lines,
            brace_pairs,
            functions,
            test_regions,
            all_test,
        }
    }

    /// The masked text of one token.
    pub fn tok_str(&self, tok: &Token) -> &str {
        // Masked bytes are a byte-for-byte copy of valid UTF-8 with some
        // bytes replaced by ASCII spaces, so slicing on token boundaries
        // (which never split a multi-byte char: idents/numbers/puncts are
        // ASCII) stays valid UTF-8.
        std::str::from_utf8(&self.masked[tok.start..tok.end]).unwrap_or("")
    }

    /// Is `offset` inside test-only code?
    pub fn is_test_code(&self, offset: usize) -> bool {
        self.all_test
            || self
                .test_regions
                .iter()
                .any(|&(s, e)| offset >= s && offset < e)
    }

    /// The innermost function whose body contains `offset`.
    pub fn enclosing_fn(&self, offset: usize) -> Option<&Function> {
        self.functions
            .iter()
            .filter(|f| {
                f.body
                    .is_some_and(|(open, close)| offset >= open && offset <= close)
            })
            .min_by_key(|f| {
                let (open, close) = f.body.unwrap_or((0, usize::MAX));
                close - open
            })
    }

    /// The innermost `{..}` block containing `offset`, as byte offsets.
    pub fn enclosing_block(&self, offset: usize) -> Option<(usize, usize)> {
        self.brace_pairs
            .iter()
            .filter(|&&(open, close)| offset > open && offset < close)
            .min_by_key(|&&(open, close)| close - open)
            .copied()
    }

    /// 1-based line of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        1 + self.text.as_bytes()[..offset.min(self.text.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count()
    }
}

/// Pass 1: blanks comments and literals, harvesting waivers and SAFETY
/// annotations from comments as it goes.
fn mask(text: &str) -> (Vec<u8>, BTreeMap<usize, Waiver>, Vec<usize>) {
    let bytes = text.as_bytes();
    let n = bytes.len();
    let mut out = bytes.to_vec();
    let mut waivers = BTreeMap::new();
    let mut safety_lines = Vec::new();
    let mut i = 0;
    let mut line = 1;

    // Blanks out[a..b], preserving newlines, bumping `line` past them.
    fn blank(out: &mut [u8], a: usize, b: usize, line: &mut usize) {
        for slot in out.iter_mut().take(b).skip(a) {
            if *slot == b'\n' {
                *line += 1;
            } else {
                *slot = b' ';
            }
        }
    }

    while i < n {
        let c = bytes[i];
        let prev = if i == 0 { b' ' } else { bytes[i - 1] };
        if c == b'\n' {
            line += 1;
            i += 1;
        } else if c == b'/' && i + 1 < n && bytes[i + 1] == b'/' {
            // Line comment (incl. doc comments).
            let mut j = i;
            while j < n && bytes[j] != b'\n' {
                j += 1;
            }
            let comment = &text[i..j];
            if comment.contains("SAFETY:") {
                safety_lines.push(line);
            }
            if let Some(w) = parse_waiver(comment, line) {
                waivers.insert(line, w);
            }
            blank(&mut out, i, j, &mut line);
            i = j;
        } else if c == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
            // Block comment, nestable.
            let start = i;
            let mut depth = 1;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if bytes[j] == b'/' && j + 1 < n && bytes[j + 1] == b'*' {
                    depth += 1;
                    j += 2;
                } else if bytes[j] == b'*' && j + 1 < n && bytes[j + 1] == b'/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            if text[start..j].contains("SAFETY:") {
                safety_lines.push(line);
            }
            blank(&mut out, start, j, &mut line);
            i = j;
        } else if c == b'"' {
            // String literal (plain or the tail of a b"..." — the `b`
            // prefix stays behind as a harmless ident).
            let j = scan_string(bytes, i);
            blank(&mut out, i, j, &mut line);
            i = j;
        } else if (c == b'r' || c == b'b')
            && !is_ident_byte(prev)
            && is_raw_or_byte_prefix(bytes, i)
        {
            let j = scan_prefixed_literal(bytes, i);
            blank(&mut out, i, j, &mut line);
            i = j;
        } else if c == b'\'' {
            // Char literal vs lifetime/loop label.
            if let Some(j) = scan_char_literal(bytes, i) {
                blank(&mut out, i, j, &mut line);
                i = j;
            } else {
                i += 1; // lifetime: leave the quote as punctuation
            }
        } else {
            i += 1;
        }
    }
    (out, waivers, safety_lines)
}

fn is_ident_byte(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

/// Does `bytes[i..]` start a raw/byte string prefix (`r"`, `r#`, `b"`,
/// `b'`, `br"`, `br#`)?
fn is_raw_or_byte_prefix(bytes: &[u8], i: usize) -> bool {
    let rest = &bytes[i..];
    match rest.first() {
        Some(b'r') => matches!(rest.get(1), Some(b'"') | Some(b'#')),
        Some(b'b') => match rest.get(1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => matches!(rest.get(2), Some(b'"') | Some(b'#')),
            _ => false,
        },
        _ => false,
    }
}

/// Scans a `"..."` with escapes, returning the offset past the close.
fn scan_string(bytes: &[u8], open: usize) -> usize {
    let n = bytes.len();
    let mut j = open + 1;
    while j < n {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    n
}

/// Scans a prefixed literal starting at `r`/`b`: raw strings (any number
/// of `#`s), byte strings, byte chars. Returns the offset past the end.
fn scan_prefixed_literal(bytes: &[u8], start: usize) -> usize {
    let n = bytes.len();
    let mut j = start;
    let mut raw = false;
    while j < n && (bytes[j] == b'r' || bytes[j] == b'b') {
        raw |= bytes[j] == b'r';
        j += 1;
    }
    if !raw {
        // b"..." or b'.'
        if bytes.get(j) == Some(&b'\'') {
            return scan_char_literal(bytes, j).unwrap_or(j + 1);
        }
        return scan_string(bytes, j);
    }
    let mut hashes = 0;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) != Some(&b'"') {
        return j; // `r#ident` raw identifier, not a string
    }
    j += 1;
    // Scan for `"` followed by `hashes` `#`s; no escapes in raw strings.
    while j < n {
        if bytes[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0;
            while seen < hashes && bytes.get(k) == Some(&b'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return k;
            }
        }
        j += 1;
    }
    n
}

/// Scans a char literal at a `'`, or `None` if this quote starts a
/// lifetime / loop label.
fn scan_char_literal(bytes: &[u8], open: usize) -> Option<usize> {
    let n = bytes.len();
    match bytes.get(open + 1) {
        Some(b'\\') => {
            // Escaped char: scan to the closing quote.
            let mut j = open + 2;
            while j < n {
                match bytes[j] {
                    b'\\' => j += 2,
                    b'\'' => return Some(j + 1),
                    _ => j += 1,
                }
            }
            Some(n)
        }
        Some(&c) if c != b'\'' => {
            // `'x'` is a char; `'x` (no close) is a lifetime. Multi-byte
            // UTF-8 chars: find the next quote within 5 bytes.
            let mut j = open + 1 + utf8_len(c);
            if bytes.get(j) == Some(&b'\'') {
                j += 1;
                // `'a'` could still be a lifetime in `<'a'...`? No —
                // lifetimes are never immediately followed by `'`.
                Some(j)
            } else {
                None
            }
        }
        _ => None,
    }
}

fn utf8_len(first: u8) -> usize {
    if first < 0x80 {
        1
    } else if first < 0xE0 {
        2
    } else if first < 0xF0 {
        3
    } else {
        4
    }
}

/// Parses a waiver out of a line comment. The directive must open the
/// comment (`// lint:allow(<rule>): <reason>`) — mid-sentence mentions
/// of the syntax (like this one) are prose, not waivers.
fn parse_waiver(comment: &str, line: usize) -> Option<Waiver> {
    let content = comment.trim_start_matches('/').trim_start_matches('!').trim_start();
    let rest = content.strip_prefix("lint:allow(")?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let tail = rest[close + 1..].trim_start();
    let has_reason = tail
        .strip_prefix(':')
        .map(|r| !r.trim().is_empty())
        .unwrap_or(false);
    Some(Waiver {
        line,
        rule,
        has_reason,
    })
}

/// Pass 2: tokenizes the masked text.
fn tokenize(masked: &[u8]) -> Vec<Token> {
    let n = masked.len();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < n {
        let c = masked[i];
        if c == b'\n' {
            line += 1;
            i += 1;
        } else if c.is_ascii_whitespace() {
            i += 1;
        } else if c == b'_' || c.is_ascii_alphabetic() {
            let start = i;
            while i < n && is_ident_byte(masked[i]) {
                i += 1;
            }
            tokens.push(Token {
                start,
                end: i,
                line,
                kind: TokenKind::Ident,
            });
        } else if c.is_ascii_digit() {
            let start = i;
            while i < n && (is_ident_byte(masked[i])) {
                i += 1;
            }
            // Float continuation: `1.5`, `1.5e3` (but not `1.method()` —
            // requires a digit right after the dot).
            if i + 1 < n
                && masked[i] == b'.'
                && masked[i + 1].is_ascii_digit()
            {
                i += 1;
                while i < n && is_ident_byte(masked[i]) {
                    i += 1;
                }
            }
            tokens.push(Token {
                start,
                end: i,
                line,
                kind: TokenKind::Number,
            });
        } else if c < 0x80 {
            tokens.push(Token {
                start: i,
                end: i + 1,
                line,
                kind: TokenKind::Punct(c),
            });
            i += 1;
        } else {
            // Multi-byte char outside a literal (shouldn't happen in this
            // codebase) — skip it whole.
            i += utf8_len(c);
        }
    }
    tokens
}

/// Matches `{`/`}` pairs over the masked text.
fn match_braces(masked: &[u8]) -> Vec<(usize, usize)> {
    let mut stack = Vec::new();
    let mut pairs = Vec::new();
    for (i, &b) in masked.iter().enumerate() {
        if b == b'{' {
            stack.push(i);
        } else if b == b'}' {
            if let Some(open) = stack.pop() {
                pairs.push((open, i));
            }
        }
    }
    pairs
}

/// Finds the matching close brace for an open brace byte offset.
fn close_of(brace_pairs: &[(usize, usize)], open: usize) -> Option<usize> {
    brace_pairs
        .iter()
        .find(|&&(o, _)| o == open)
        .map(|&(_, c)| c)
}

/// Scans for `fn` items and resolves each one's body span.
fn find_functions(
    masked: &[u8],
    tokens: &[Token],
    brace_pairs: &[(usize, usize)],
) -> Vec<Function> {
    let mut functions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let is_fn = tokens[i].kind == TokenKind::Ident
            && &masked[tokens[i].start..tokens[i].end] == b"fn";
        if is_fn {
            // `fn` in a type position (`fn(u8) -> u8`) has `(` next, not
            // a name; skip those.
            if let Some(name_tok) = tokens.get(i + 1) {
                if name_tok.kind == TokenKind::Ident {
                    let name = String::from_utf8_lossy(
                        &masked[name_tok.start..name_tok.end],
                    )
                    .into_owned();
                    let body = find_body(tokens, i + 2, brace_pairs);
                    functions.push(Function {
                        name,
                        start: tokens[i].start,
                        body,
                    });
                }
            }
        }
        i += 1;
    }
    functions
}

/// From token index `from`, finds the first `{` at paren/bracket depth 0
/// (the body open) or a `;` (no body).
fn find_body(
    tokens: &[Token],
    from: usize,
    brace_pairs: &[(usize, usize)],
) -> Option<(usize, usize)> {
    let mut depth: i32 = 0;
    for tok in tokens.iter().skip(from) {
        match tok.kind {
            TokenKind::Punct(b'(') | TokenKind::Punct(b'[') => depth += 1,
            TokenKind::Punct(b')') | TokenKind::Punct(b']') => depth -= 1,
            TokenKind::Punct(b'{') if depth == 0 => {
                let close = close_of(brace_pairs, tok.start)?;
                return Some((tok.start, close));
            }
            TokenKind::Punct(b';') if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Finds `#[test]`-like and `#[cfg(test)]`-gated item spans.
///
/// Any outer attribute whose tokens include the bare ident `test` marks
/// the following item (through its closing brace or semicolon) as test
/// code. This covers `#[test]`, `#[cfg(test)]`, and
/// `#[cfg(any(test, ...))]`; string values inside attributes are masked,
/// so `#[doc = "test"]` cannot false-positive.
fn find_test_regions(
    masked: &[u8],
    tokens: &[Token],
    brace_pairs: &[(usize, usize)],
) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind != TokenKind::Punct(b'#') {
            i += 1;
            continue;
        }
        // `#![...]` inner attributes configure the enclosing item — skip.
        if matches!(tokens.get(i + 1), Some(t) if t.kind == TokenKind::Punct(b'!')) {
            i += 2;
            continue;
        }
        if !matches!(tokens.get(i + 1), Some(t) if t.kind == TokenKind::Punct(b'[')) {
            i += 1;
            continue;
        }
        let attr_start = tokens[i].start;
        let (attr_is_test, after_attr) = scan_attr(masked, tokens, i + 2);
        let mut j = after_attr;
        let mut is_test = attr_is_test;
        // Fold in any further attributes stacked on the same item.
        while matches!(tokens.get(j), Some(t) if t.kind == TokenKind::Punct(b'#'))
            && matches!(tokens.get(j + 1), Some(t) if t.kind == TokenKind::Punct(b'['))
        {
            let (more, next) = scan_attr(masked, tokens, j + 2);
            is_test |= more;
            j = next;
        }
        if !is_test {
            i = j.max(i + 1);
            continue;
        }
        // The item body: first `{` at paren/bracket depth 0, or `;`.
        let mut depth: i32 = 0;
        let mut end = None;
        for tok in tokens.iter().skip(j) {
            match tok.kind {
                TokenKind::Punct(b'(') | TokenKind::Punct(b'[') => depth += 1,
                TokenKind::Punct(b')') | TokenKind::Punct(b']') => depth -= 1,
                TokenKind::Punct(b'{') if depth == 0 => {
                    end = close_of(brace_pairs, tok.start).map(|c| c + 1);
                    break;
                }
                TokenKind::Punct(b';') if depth == 0 => {
                    end = Some(tok.end);
                    break;
                }
                _ => {}
            }
        }
        if let Some(end) = end {
            regions.push((attr_start, end));
        }
        i = j.max(i + 1);
    }
    regions
}

/// Scans one attribute's bracket group starting at the token index just
/// inside `#[`. Returns (contains bare ident `test`, token index past the
/// closing `]`).
fn scan_attr(masked: &[u8], tokens: &[Token], from: usize) -> (bool, usize) {
    let mut depth = 1;
    let mut j = from;
    let mut is_test = false;
    while j < tokens.len() && depth > 0 {
        match tokens[j].kind {
            TokenKind::Punct(b'[') => depth += 1,
            TokenKind::Punct(b']') => depth -= 1,
            TokenKind::Ident if &masked[tokens[j].start..tokens[j].end] == b"test" => {
                is_test = true;
            }
            _ => {}
        }
        j += 1;
    }
    (is_test, j)
}
